// Text serialization of traces (messages + dictionary + ground-truth
// script), so generated workloads can be saved, inspected and replayed.
//
// Format (line-oriented, '#' comments):
//   scprt-trace 1
//   V <id> <noun:0|1> <spelling>
//   E <id> <spurious:0|1> <shape:0|1> <start> <duration> <peak> <evo> <headline>
//   EK <event-id> <kw-id>...        (core keywords)
//   EL <event-id> <kw-id>...        (late keywords)
//   EU <event-id> <user-id>...      (user pool)
//   M <seq> <user> <event-id> <kw-id>...

#ifndef SCPRT_STREAM_TRACE_H_
#define SCPRT_STREAM_TRACE_H_

#include <iosfwd>
#include <string>

#include "stream/synthetic.h"

namespace scprt::stream {

/// Writes `trace` to `out`. Returns false on stream failure.
bool WriteTrace(const SyntheticTrace& trace, std::ostream& out);

/// Writes `trace` to `path`. Returns false on I/O failure.
bool WriteTraceFile(const SyntheticTrace& trace, const std::string& path);

/// Parses a trace from `in`. Returns false on malformed input; on failure
/// `trace` is left in an unspecified state.
bool ReadTrace(std::istream& in, SyntheticTrace& trace);

/// Reads a trace from `path`.
bool ReadTraceFile(const std::string& path, SyntheticTrace& trace);

}  // namespace scprt::stream

#endif  // SCPRT_STREAM_TRACE_H_
