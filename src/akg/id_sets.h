// Per-keyword user-id sets over the sliding window (Section 3.2: "This set
// U1 (called the id set) associated with a keyword n1 contains the ids of
// all those users who used this word in the current window").
//
// Supports O(1) amortized ingestion, exact window expiry, per-quantum
// distinct-user counts (the burstiness signal), and exact Jaccard between
// two keywords' id sets (the edge correlation EC).

#ifndef SCPRT_AKG_ID_SETS_H_
#define SCPRT_AKG_ID_SETS_H_

#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.h"

namespace scprt::akg {

/// Maintains id sets for every keyword seen in the last `window_length`
/// quanta. Usage per quantum: BeginQuantum(); Add(...)*; EndQuantum().
class UserIdSets {
 public:
  /// `window_length` is the paper's w, >= 1.
  explicit UserIdSets(std::size_t window_length);

  /// Opens a new quantum. Must alternate with EndQuantum.
  void BeginQuantum();

  /// Records that `user` used `keyword` in the open quantum. Duplicate
  /// (keyword, user) pairs within a quantum are collapsed.
  void Add(KeywordId keyword, UserId user);

  /// Closes the quantum, folds it into the window aggregate, and expires
  /// the quantum that fell out of the window.
  void EndQuantum();

  /// Distinct users of `keyword` in the (just-closed) most recent quantum.
  std::size_t QuantumSupport(KeywordId keyword) const;

  /// Keywords that occurred in the most recent quantum.
  const std::vector<KeywordId>& QuantumKeywords() const {
    return last_quantum_keywords_;
  }

  /// Distinct users of `keyword` across the whole window (the node weight
  /// w_i of the rank function).
  std::size_t WindowSupport(KeywordId keyword) const;

  /// Distinct users of `keyword` across the window (unordered snapshot).
  std::vector<UserId> WindowUsers(KeywordId keyword) const;

  /// Exact Jaccard coefficient of the two keywords' window id sets
  /// (|U1 n U2| / |U1 u U2|). 0 when either set is empty.
  double Jaccard(KeywordId a, KeywordId b) const;

  /// Number of keywords with non-empty window id sets.
  std::size_t active_keywords() const { return window_.size(); }

 private:
  using UserCounts = std::unordered_map<UserId, std::uint32_t>;

  std::size_t window_length_;
  bool quantum_open_ = false;

  // Open quantum: keyword -> distinct users.
  std::unordered_map<KeywordId, std::unordered_set<UserId>> current_;
  // Closed quanta, oldest first, in compact form for expiry.
  std::deque<std::vector<std::pair<KeywordId, UserId>>> history_;
  // Window aggregate: keyword -> (user -> multiplicity across quanta).
  std::unordered_map<KeywordId, UserCounts> window_;
  // Most recent closed quantum's per-keyword distinct-user counts.
  std::unordered_map<KeywordId, std::uint32_t> last_quantum_support_;
  std::vector<KeywordId> last_quantum_keywords_;
};

}  // namespace scprt::akg

#endif  // SCPRT_AKG_ID_SETS_H_
