// Per-keyword user-id sets over the sliding window (Section 3.2: "This set
// U1 (called the id set) associated with a keyword n1 contains the ids of
// all those users who used this word in the current window").
//
// Supports O(1) amortized ingestion, exact window expiry, per-quantum
// distinct-user counts (the burstiness signal), and exact Jaccard between
// two keywords' id sets (the edge correlation EC).
//
// Internally the store is partitioned into a fixed number of keyword
// shards (keyword % kIdSetShards). Shards never share state, so the
// per-quantum fold + expiry runs shard-parallel through IngestAggregate's
// hook while every query and the Begin/Add/End path stay unchanged. All
// outputs are canonical (QuantumKeywords ascending, everything else
// content-addressed), so results do not depend on the shard count or on
// which thread folded which shard.

#ifndef SCPRT_AKG_ID_SETS_H_
#define SCPRT_AKG_ID_SETS_H_

#include <deque>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "akg/quantum_aggregate.h"
#include "common/binary_io.h"
#include "common/parallel.h"
#include "common/types.h"

namespace scprt::akg {

/// Maintains id sets for every keyword seen in the last `window_length`
/// quanta. Usage per quantum: BeginQuantum(); Add(...)*; EndQuantum() — or
/// one IngestAggregate call with the quantum's canonical aggregate.
class UserIdSets {
 public:
  /// Keyword shards per store. Fixed (not tied to the thread count) so the
  /// data layout is identical no matter who drives the ingestion.
  static constexpr std::size_t kIdSetShards = 16;

  /// `window_length` is the paper's w, >= 1.
  explicit UserIdSets(std::size_t window_length);

  /// Opens a new quantum. Must alternate with EndQuantum.
  void BeginQuantum();

  /// Records that `user` used `keyword` in the open quantum. Duplicate
  /// (keyword, user) pairs within a quantum are collapsed.
  void Add(KeywordId keyword, UserId user);

  /// Closes the quantum, folds it into the window aggregate, and expires
  /// the quantum that fell out of the window.
  void EndQuantum();

  /// Ingests one whole quantum from its canonical aggregate — exactly
  /// equivalent to BeginQuantum + Add* + EndQuantum on the same content.
  /// `parallel_for` (serial default when null) runs the independent
  /// per-shard folds concurrently.
  void IngestAggregate(const QuantumAggregate& aggregate,
                       const ParallelForFn& parallel_for);

  /// Distinct users of `keyword` in the (just-closed) most recent quantum.
  std::size_t QuantumSupport(KeywordId keyword) const;

  /// Keywords that occurred in the most recent quantum, ascending.
  const std::vector<KeywordId>& QuantumKeywords() const {
    return last_quantum_keywords_;
  }

  /// Distinct users of `keyword` across the whole window (the node weight
  /// w_i of the rank function).
  std::size_t WindowSupport(KeywordId keyword) const;

  /// Distinct users of `keyword` across the window (unordered snapshot).
  std::vector<UserId> WindowUsers(KeywordId keyword) const;

  /// Exact Jaccard coefficient of the two keywords' window id sets
  /// (|U1 n U2| / |U1 u U2|). 0 when either set is empty.
  double Jaccard(KeywordId a, KeywordId b) const;

  /// Number of keywords with non-empty window id sets.
  std::size_t active_keywords() const;

  /// Closed quanta currently retained (<= window length). Every quantum
  /// pushes one history entry into every shard, so the depth is uniform.
  std::size_t HistoryDepth() const { return shards_[0].history.size(); }

  /// Visits every shard's retained history slot, oldest slot first:
  /// visitor(shard, slot, pairs) where `pairs` is that quantum's distinct
  /// (keyword, user) occurrences owned by the shard. Pair order within a
  /// slot is unspecified (sorted after Restore, ingest order live) — the
  /// sketch-window rebuild sorts its own copy.
  void VisitHistory(
      const std::function<void(
          std::size_t shard, std::size_t slot,
          const std::vector<std::pair<KeywordId, UserId>>& pairs)>& visitor)
      const;

  /// Serializes the per-shard quantum histories (the minimal generating
  /// state: window aggregates and last-quantum views are folds of it), in
  /// canonical (keyword, user)-sorted order. Must be called between quanta.
  void Save(BinaryWriter& out) const;

  /// Replaces this store with Save()'s encoding, refolding the histories
  /// into window aggregates. Returns false on malformed input (shard count
  /// or history depth mismatch, overrun); the store is cleared then.
  bool Restore(BinaryReader& in);

 private:
  using UserCounts = std::unordered_map<UserId, std::uint32_t>;

  /// One keyword partition; a quantum touches every shard independently.
  struct Shard {
    // Open quantum: keyword -> distinct users.
    std::unordered_map<KeywordId, std::unordered_set<UserId>> current;
    // Closed quanta, oldest first, in compact form for expiry.
    std::deque<std::vector<std::pair<KeywordId, UserId>>> history;
    // Window aggregate: keyword -> (user -> multiplicity across quanta).
    std::unordered_map<KeywordId, UserCounts> window;
    // Most recent closed quantum's per-keyword distinct-user counts.
    std::unordered_map<KeywordId, std::uint32_t> last_quantum_support;
    // Keywords of the most recent closed quantum, ascending.
    std::vector<KeywordId> last_quantum_keywords;
  };

  static std::size_t ShardOf(KeywordId keyword) {
    return keyword % kIdSetShards;
  }

  /// Folds one keyword's quantum users into `shard`: support count,
  /// keyword list, window multiplicities and the compact history entry.
  /// The single definition of the fold invariant — both ingest paths
  /// (EndQuantum and IngestAggregate) go through it.
  template <typename Users>
  static void FoldKeyword(Shard& shard, KeywordId keyword,
                          const Users& users,
                          std::vector<std::pair<KeywordId, UserId>>& compact);

  /// Folds the shard's open quantum into its window and expires the
  /// quantum leaving the window. Touches only `shard`.
  void FoldShard(Shard& shard);

  /// Drops the shard's quantum that just left the window, if any.
  void ExpireShard(Shard& shard);

  /// Rebuilds the merged QuantumKeywords vector from the shards.
  void MergeQuantumKeywords();

  std::size_t window_length_;
  bool quantum_open_ = false;
  std::vector<Shard> shards_{kIdSetShards};
  // Merged view of the shards' last-quantum keywords, ascending.
  std::vector<KeywordId> last_quantum_keywords_;
};

}  // namespace scprt::akg

#endif  // SCPRT_AKG_ID_SETS_H_
