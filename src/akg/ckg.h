// The full Correlated Keyword Graph (CKG) over the sliding window —
// every keyword a node, an edge wherever two keywords co-occur in one
// user's messages within a quantum (paper Section 1.1).
//
// The production pipeline never materializes the CKG (that is the point of
// the AKG, Section 3); this module exists for the Section 7.4 measurement
// ("the number of edges in AKG was less than 2% of CKG"), for tests, and
// for offline analyses a downstream user may want.

#ifndef SCPRT_AKG_CKG_H_
#define SCPRT_AKG_CKG_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <utility>

#include "stream/message.h"

namespace scprt::akg {

/// Multiplicity-counted windowed co-occurrence graph. Push one quantum at a
/// time; the window slides automatically.
class WindowedCkg {
 public:
  /// `window_length` = the paper's w, in quanta.
  explicit WindowedCkg(std::size_t window_length);

  /// Ingests one quantum (all messages), expiring the quantum that leaves
  /// the window.
  void PushQuantum(const stream::Quantum& quantum);

  /// Distinct co-occurrence edges currently in the window.
  std::size_t edge_count() const { return edges_.size(); }

  /// Distinct keywords currently in the window.
  std::size_t node_count() const { return nodes_.size(); }

  /// True if the two keywords currently co-occur.
  bool HasEdge(KeywordId a, KeywordId b) const;

  /// Number of window quanta currently held.
  std::size_t window_fill() const { return history_.size(); }

  /// True once the window holds `window_length` quanta.
  bool warm() const { return history_.size() == window_length_; }

 private:
  static std::uint64_t EdgeKey(KeywordId a, KeywordId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }

  std::size_t window_length_;
  // Window aggregates with multiplicities so expiry is exact.
  std::unordered_map<std::uint64_t, std::uint32_t> edges_;
  std::unordered_map<KeywordId, std::uint32_t> nodes_;
  struct QuantumContribution {
    std::unordered_map<std::uint64_t, std::uint32_t> edges;
    std::unordered_map<KeywordId, std::uint32_t> nodes;
  };
  std::deque<QuantumContribution> history_;
};

}  // namespace scprt::akg

#endif  // SCPRT_AKG_CKG_H_
