#include "akg/node_state.h"

#include <algorithm>

#include "common/check.h"

namespace scprt::akg {

NodeStateAutomaton::NodeStateAutomaton(std::uint32_t high_threshold,
                                       std::size_t window_length)
    : high_threshold_(high_threshold), window_length_(window_length) {
  SCPRT_CHECK(high_threshold >= 1);
  SCPRT_CHECK(window_length >= 1);
}

NodeStateUpdate NodeStateAutomaton::ProcessQuantum(
    QuantumIndex now,
    const std::vector<std::pair<KeywordId, std::uint32_t>>& quantum_keywords,
    const std::function<bool(KeywordId)>& in_cluster) {
  NodeStateUpdate update;

  for (const auto& [keyword, users] : quantum_keywords) {
    last_seen_[keyword] = now;
    const bool bursty = users >= high_threshold_;
    if (bursty) {
      last_bursty_[keyword] = now;
      update.bursty.push_back(keyword);
      if (akg_.emplace(keyword, true).second) {
        update.entered.push_back(keyword);
      }
    } else if (akg_.count(keyword)) {
      update.seen_in_akg.push_back(keyword);
    }
  }

  // Eviction sweep over AKG members (the AKG is small; Section 7.4 measures
  // < 5% of keywords bursty). Two rules:
  //   stale:    no occurrence in the last w quanta;
  //   faded:    not bursty in the last w quanta and in no cluster.
  const QuantumIndex horizon = now - static_cast<QuantumIndex>(window_length_);
  std::vector<KeywordId> evict;
  for (const auto& [keyword, _] : akg_) {
    auto seen_it = last_seen_.find(keyword);
    SCPRT_DCHECK(seen_it != last_seen_.end());
    const bool stale = seen_it->second <= horizon;
    bool faded = false;
    if (!stale) {
      auto bursty_it = last_bursty_.find(keyword);
      const bool recently_bursty =
          bursty_it != last_bursty_.end() && bursty_it->second > horizon;
      faded = !recently_bursty && !in_cluster(keyword);
    }
    if (stale || faded) evict.push_back(keyword);
  }
  for (KeywordId keyword : evict) {
    akg_.erase(keyword);
    last_bursty_.erase(keyword);
    update.removed.push_back(keyword);
  }

  // Prune the CKG-side bookkeeping of stale keywords so memory tracks the
  // window, not the whole stream history.
  for (auto it = last_seen_.begin(); it != last_seen_.end();) {
    if (it->second <= horizon && !akg_.count(it->first)) {
      last_bursty_.erase(it->first);
      it = last_seen_.erase(it);
    } else {
      ++it;
    }
  }

  std::sort(update.entered.begin(), update.entered.end());
  std::sort(update.bursty.begin(), update.bursty.end());
  std::sort(update.seen_in_akg.begin(), update.seen_in_akg.end());
  std::sort(update.removed.begin(), update.removed.end());
  return update;
}

namespace {

void SaveStampMap(BinaryWriter& out,
                  const std::unordered_map<KeywordId, QuantumIndex>& map) {
  std::vector<std::pair<KeywordId, QuantumIndex>> sorted(map.begin(),
                                                         map.end());
  std::sort(sorted.begin(), sorted.end());
  out.U64(sorted.size());
  for (const auto& [keyword, stamp] : sorted) {
    out.U32(keyword);
    out.I64(stamp);
  }
}

bool RestoreStampMap(BinaryReader& in,
                     std::unordered_map<KeywordId, QuantumIndex>& map) {
  map.clear();
  const std::uint64_t count = in.U64();
  if (!in.CheckLength(count, 12)) return false;
  map.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const KeywordId keyword = in.U32();
    const QuantumIndex stamp = in.I64();
    if (!in.ok() || !map.emplace(keyword, stamp).second) {
      in.Fail();
      return false;
    }
  }
  return true;
}

}  // namespace

void NodeStateAutomaton::Save(BinaryWriter& out) const {
  SaveStampMap(out, last_seen_);
  SaveStampMap(out, last_bursty_);
  std::vector<KeywordId> members;
  members.reserve(akg_.size());
  for (const auto& [keyword, _] : akg_) members.push_back(keyword);
  std::sort(members.begin(), members.end());
  out.U64(members.size());
  for (KeywordId keyword : members) out.U32(keyword);
}

bool NodeStateAutomaton::Restore(BinaryReader& in) {
  akg_.clear();
  if (!RestoreStampMap(in, last_seen_) ||
      !RestoreStampMap(in, last_bursty_)) {
    last_seen_.clear();
    last_bursty_.clear();
    return false;
  }
  const std::uint64_t members = in.U64();
  bool valid = in.CheckLength(members, 4);
  for (std::uint64_t i = 0; valid && i < members; ++i) {
    const KeywordId keyword = in.U32();
    // Every member must carry a last-seen stamp (the eviction sweep
    // dereferences it).
    if (!in.ok() || last_seen_.count(keyword) == 0 ||
        !akg_.emplace(keyword, true).second) {
      valid = false;
    }
  }
  if (!valid || !in.ok()) {
    last_seen_.clear();
    last_bursty_.clear();
    akg_.clear();
    in.Fail();
    return false;
  }
  return true;
}

}  // namespace scprt::akg
