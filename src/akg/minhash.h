// Bottom-p Min-Hash signatures for cheap edge-correlation screening
// (Section 3.2.2), in two forms:
//
//  * MinHasher — the paper's unweighted scheme: each user id is hashed once
//    with a seeded 64-bit hash and a keyword's signature is the p smallest
//    distinct hash values over its window id set. Two keywords sharing a
//    signature value are candidate edges; the bottom-p intersection also
//    yields the standard bottom-k Jaccard estimate.
//
//  * WeightedMinHasher — a mergeable sketch built incrementally per quantum.
//    Each sketch entry carries the user's hash key and a rank score; a
//    keyword's window sketch is the pairwise Combine of its per-quantum
//    sketches rather than a rebuild from the folded window id set. In
//    unweighted mode the score is a monotone function of the key, so the
//    sketch's Values() are bit-identical to MinHasher::Signature of the
//    same id set. In weighted mode the score is an exponential draw scaled
//    by the user's per-quantum message count: min-merging the draws across
//    quanta realizes Exp(total count), so heavier users sink to the bottom
//    of the sketch and the screen gains the frequency dimension.
//
// Combine is exact under truncation (a merged sketch equals the sketch of
// the merged input, by the usual KMV argument), hence associative and
// commutative — which is what lets per-shard, per-quantum sketches reduce
// through a tree (common/parallel.h TreeReduce) in any grouping with
// bit-identical results. The only precondition is that one (user, quantum)
// occurrence is never split across the parts being merged; keyword-sharded
// aggregation satisfies it by construction.

#ifndef SCPRT_AKG_MINHASH_H_
#define SCPRT_AKG_MINHASH_H_

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "common/types.h"

namespace scprt::akg {

/// A keyword's signature: up to p hash values, sorted ascending.
using MinHashSignature = std::vector<std::uint64_t>;

/// One weighted-sketch slot: the user's hash key (SeededHash of the id —
/// bijective, so distinct users never collide) and its rank score.
struct SketchEntry {
  std::uint64_t key = 0;
  double score = 0.0;
  friend bool operator==(const SketchEntry&, const SketchEntry&) = default;
};

/// A mergeable bottom-p sketch: up to p entries with distinct keys, sorted
/// ascending by (score, key).
using WeightedSketch = std::vector<SketchEntry>;

/// The sketch order: ascending (score, key). The key tie-break makes the
/// order total, so sketches with equal content are bit-identical.
bool SketchOrderLess(const SketchEntry& a, const SketchEntry& b);

/// A keyword's cached signature state: the plain sorted values used for
/// screening and bucket joins, plus the sketch they were extracted from
/// (carries the scores the weighted EC estimate needs).
struct KeywordSignature {
  MinHashSignature values;
  WeightedSketch sketch;
};

/// Computes bottom-p signatures.
class MinHasher {
 public:
  /// `p` >= 1 signature size; `seed` fixes the hash function.
  MinHasher(std::size_t p, std::uint64_t seed);

  /// Signature of a user set (any order; duplicate ids are collapsed, so a
  /// repeated id never occupies two bottom-p slots). Size is
  /// min(p, distinct users).
  MinHashSignature Signature(const std::vector<UserId>& users) const;

  /// True if the sorted signatures share at least one value.
  static bool SharesValue(const MinHashSignature& a,
                          const MinHashSignature& b);

  /// Bottom-k Jaccard estimate: |X n A n B| / |X| where X is the bottom-p
  /// of A u B under set semantics (duplicate values within a list count
  /// once). Unbiased for |A u B| >= p; when both signatures are complete
  /// sets (|A| < p and |B| < p), X is the whole union and the estimate is
  /// the exact Jaccard. Returns 0 on empty input.
  static double EstimateJaccard(const MinHashSignature& a,
                                const MinHashSignature& b, std::size_t p);

  std::size_t p() const { return p_; }

 private:
  std::size_t p_;
  SeededHash hash_;
};

/// Builds and merges per-quantum weighted sketches. Stateless apart from
/// the configuration (p, seed, weighted flag); safe to share across
/// threads.
class WeightedMinHasher {
 public:
  /// `p` >= 1 sketch size; `seed` fixes the key hash (the same seed as
  /// MinHasher gives identical keys); `weighted` selects count-scaled
  /// exponential scores over the unweighted key-derived scores.
  WeightedMinHasher(std::size_t p, std::uint64_t seed, bool weighted);

  /// Sketch of one keyword's occurrences in `quantum`: `users` must be
  /// distinct (the canonical aggregate's invariant); `counts`, aligned with
  /// `users`, carries each user's message count and is only read in
  /// weighted mode (may be empty otherwise).
  WeightedSketch QuantumSketch(QuantumIndex quantum,
                               const std::vector<UserId>& users,
                               const std::vector<std::uint32_t>& counts) const;

  /// Merges two sketches: minimum score per key, bottom-p overall. Exact
  /// (equals the sketch of the merged inputs), associative and commutative;
  /// the identity is the empty sketch.
  static WeightedSketch Combine(const WeightedSketch& a,
                                const WeightedSketch& b, std::size_t p);

  /// Reduces `parts` with Combine in the fixed pairwise-tree shape
  /// (TreeReduce, serial). Any grouping gives the same result; the fixed
  /// shape makes that property cheap to audit.
  static WeightedSketch CombineTree(std::vector<WeightedSketch> parts,
                                    std::size_t p);

  /// The sketch's keys, sorted ascending — the screening signature. In
  /// unweighted mode, bit-identical to MinHasher::Signature of the same id
  /// set under the same p and seed.
  static MinHashSignature Values(const WeightedSketch& sketch);

  /// Reconstructs the unweighted sketch carrying these signature values
  /// (score is a pure function of the key) — the inverse of Values() in
  /// unweighted mode, used on snapshot restore.
  static WeightedSketch FromValues(const MinHashSignature& values);

  /// Resemblance estimate from two weighted sketches: the fraction of the
  /// merged sketch's bottom-p entries (a weight-biased sample of the union)
  /// whose key appears in both inputs. For unweighted sketches this equals
  /// EstimateJaccard on their Values(). Returns 0 on empty input.
  static double EstimateResemblance(const WeightedSketch& a,
                                    const WeightedSketch& b, std::size_t p);

  /// Distinct-user estimate from a sketch's KEYS alone. Because one user
  /// contributes exactly one key no matter how many messages they sent
  /// (QuantumSketch requires distinct users; Combine is first-key-wins),
  /// the estimate is immune to per-user message counts — the property the
  /// store's query re-rank relies on (a spammer cannot inflate a past
  /// event's support). Exact when the sketch is not full (< p entries);
  /// the standard KMV estimate (p-1)/max_normalized_key for full
  /// unweighted sketches; for full weighted sketches the keys are a
  /// weight-biased sample and the same formula is a deterministic
  /// approximation. Returns 0 on empty input.
  static double EstimateDistinctUsers(const WeightedSketch& sketch,
                                      std::size_t p);

  std::size_t p() const { return p_; }
  bool weighted() const { return weighted_; }

 private:
  std::size_t p_;
  bool weighted_;
  SeededHash hash_;
};

/// Derives the paper's default signature size from theta and gamma:
/// p = min(ceil(theta/2), ceil(1/gamma)), clamped to [2, 16] (Section
/// 3.2.2: "Value of p is set to min(theta/2, 1/gamma)"). Both terms round
/// up — the real-valued formula is a resolution floor, so for odd theta the
/// signature errs toward one extra slot rather than one fewer.
std::size_t DefaultMinHashSize(std::uint32_t high_threshold,
                               double ec_threshold);

}  // namespace scprt::akg

#endif  // SCPRT_AKG_MINHASH_H_
