// Bottom-p Min-Hash signatures for cheap edge-correlation screening
// (Section 3.2.2).
//
// Each user id is hashed once per quantum-batch with a seeded 64-bit hash;
// a keyword's signature is the p smallest hash values over its window id
// set. Two keywords sharing at least one signature value are candidate
// edges (the paper adds the edge on a shared entry; we optionally verify
// with the exact Jaccard — see AkgConfig::verify_exact_jaccard). The
// bottom-p intersection also yields the standard unbiased Jaccard estimate.

#ifndef SCPRT_AKG_MINHASH_H_
#define SCPRT_AKG_MINHASH_H_

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "common/types.h"

namespace scprt::akg {

/// A keyword's signature: up to p hash values, sorted ascending.
using MinHashSignature = std::vector<std::uint64_t>;

/// Computes bottom-p signatures.
class MinHasher {
 public:
  /// `p` >= 1 signature size; `seed` fixes the hash function.
  MinHasher(std::size_t p, std::uint64_t seed);

  /// Signature of a user set (any order). Size min(p, users.size()).
  MinHashSignature Signature(const std::vector<UserId>& users) const;

  /// True if the sorted signatures share at least one value.
  static bool SharesValue(const MinHashSignature& a,
                          const MinHashSignature& b);

  /// Bottom-k Jaccard estimate: |X n A n B| / |X| where X is the bottom-p
  /// of A u B. Unbiased for |A u B| >= p. Returns 0 on empty input.
  static double EstimateJaccard(const MinHashSignature& a,
                                const MinHashSignature& b, std::size_t p);

  std::size_t p() const { return p_; }

 private:
  std::size_t p_;
  SeededHash hash_;
};

/// Derives the paper's default signature size from theta and gamma:
/// p = min(theta/2, ceil(1/gamma)), clamped to [2, 16] (Section 3.2.2:
/// "Value of p is set to min(theta/2, 1/gamma)").
std::size_t DefaultMinHashSize(std::uint32_t high_threshold,
                               double ec_threshold);

}  // namespace scprt::akg

#endif  // SCPRT_AKG_MINHASH_H_
