#include "akg/id_sets.h"

#include <algorithm>

#include "common/check.h"

namespace scprt::akg {

UserIdSets::UserIdSets(std::size_t window_length)
    : window_length_(window_length) {
  SCPRT_CHECK(window_length >= 1);
}

void UserIdSets::BeginQuantum() {
  SCPRT_CHECK(!quantum_open_);
  quantum_open_ = true;
  for (Shard& shard : shards_) shard.current.clear();
}

void UserIdSets::Add(KeywordId keyword, UserId user) {
  SCPRT_DCHECK(quantum_open_);
  shards_[ShardOf(keyword)].current[keyword].insert(user);
}

void UserIdSets::ExpireShard(Shard& shard) {
  if (shard.history.size() <= window_length_) return;
  for (const auto& [keyword, user] : shard.history.front()) {
    auto wit = shard.window.find(keyword);
    SCPRT_DCHECK(wit != shard.window.end());
    auto uit = wit->second.find(user);
    SCPRT_DCHECK(uit != wit->second.end());
    if (--uit->second == 0) wit->second.erase(uit);
    if (wit->second.empty()) shard.window.erase(wit);
  }
  shard.history.pop_front();
}

template <typename Users>
void UserIdSets::FoldKeyword(
    Shard& shard, KeywordId keyword, const Users& users,
    std::vector<std::pair<KeywordId, UserId>>& compact) {
  shard.last_quantum_support[keyword] =
      static_cast<std::uint32_t>(users.size());
  shard.last_quantum_keywords.push_back(keyword);
  UserCounts& counts = shard.window[keyword];
  for (UserId user : users) {
    ++counts[user];
    compact.emplace_back(keyword, user);
  }
}

void UserIdSets::FoldShard(Shard& shard) {
  shard.last_quantum_support.clear();
  shard.last_quantum_keywords.clear();
  std::vector<std::pair<KeywordId, UserId>> compact;
  for (const auto& [keyword, users] : shard.current) {
    FoldKeyword(shard, keyword, users, compact);
  }
  shard.current.clear();
  shard.history.push_back(std::move(compact));
  ExpireShard(shard);
}

void UserIdSets::MergeQuantumKeywords() {
  last_quantum_keywords_.clear();
  for (const Shard& shard : shards_) {
    last_quantum_keywords_.insert(last_quantum_keywords_.end(),
                                  shard.last_quantum_keywords.begin(),
                                  shard.last_quantum_keywords.end());
  }
  // Canonical order: reports derived downstream must not depend on message
  // arrival order within the quantum (the parallel engine ingests
  // keyword-sharded aggregates in slice order).
  std::sort(last_quantum_keywords_.begin(), last_quantum_keywords_.end());
}

void UserIdSets::EndQuantum() {
  SCPRT_CHECK(quantum_open_);
  quantum_open_ = false;
  for (Shard& shard : shards_) FoldShard(shard);
  MergeQuantumKeywords();
}

void UserIdSets::IngestAggregate(const QuantumAggregate& aggregate,
                                 const ParallelForFn& parallel_for) {
  SCPRT_CHECK(!quantum_open_);
  // One routing pass up front so each shard folds only its own entries
  // instead of re-scanning the whole aggregate.
  std::vector<std::vector<std::uint32_t>> owned(kIdSetShards);
  for (std::uint32_t i = 0; i < aggregate.keywords.size(); ++i) {
    owned[ShardOf(aggregate.keywords[i].keyword)].push_back(i);
  }
  const auto ingest_shard = [&](std::size_t s) {
    Shard& shard = shards_[s];
    shard.last_quantum_support.clear();
    shard.last_quantum_keywords.clear();
    std::vector<std::pair<KeywordId, UserId>> compact;
    for (std::uint32_t i : owned[s]) {
      const QuantumAggregate::Entry& entry = aggregate.keywords[i];
      FoldKeyword(shard, entry.keyword, entry.users, compact);
    }
    shard.history.push_back(std::move(compact));
    ExpireShard(shard);
  };
  if (parallel_for) {
    parallel_for(kIdSetShards, ingest_shard);
  } else {
    SerialFor(kIdSetShards, ingest_shard);
  }
  MergeQuantumKeywords();
}

std::size_t UserIdSets::QuantumSupport(KeywordId keyword) const {
  const Shard& shard = shards_[ShardOf(keyword)];
  auto it = shard.last_quantum_support.find(keyword);
  return it == shard.last_quantum_support.end() ? 0 : it->second;
}

std::size_t UserIdSets::WindowSupport(KeywordId keyword) const {
  const Shard& shard = shards_[ShardOf(keyword)];
  auto it = shard.window.find(keyword);
  return it == shard.window.end() ? 0 : it->second.size();
}

std::vector<UserId> UserIdSets::WindowUsers(KeywordId keyword) const {
  std::vector<UserId> users;
  const Shard& shard = shards_[ShardOf(keyword)];
  auto it = shard.window.find(keyword);
  if (it == shard.window.end()) return users;
  users.reserve(it->second.size());
  for (const auto& [user, _] : it->second) users.push_back(user);
  return users;
}

double UserIdSets::Jaccard(KeywordId a, KeywordId b) const {
  const Shard& shard_a = shards_[ShardOf(a)];
  const Shard& shard_b = shards_[ShardOf(b)];
  auto ita = shard_a.window.find(a);
  auto itb = shard_b.window.find(b);
  if (ita == shard_a.window.end() || itb == shard_b.window.end()) return 0.0;
  const UserCounts* small = &ita->second;
  const UserCounts* large = &itb->second;
  if (small->size() > large->size()) std::swap(small, large);
  std::size_t intersection = 0;
  for (const auto& [user, _] : *small) {
    if (large->count(user)) ++intersection;
  }
  const std::size_t unioned = small->size() + large->size() - intersection;
  return unioned == 0
             ? 0.0
             : static_cast<double>(intersection) /
                   static_cast<double>(unioned);
}

void UserIdSets::VisitHistory(
    const std::function<void(
        std::size_t shard, std::size_t slot,
        const std::vector<std::pair<KeywordId, UserId>>& pairs)>& visitor)
    const {
  for (std::size_t s = 0; s < kIdSetShards; ++s) {
    for (std::size_t q = 0; q < shards_[s].history.size(); ++q) {
      visitor(s, q, shards_[s].history[q]);
    }
  }
}

std::size_t UserIdSets::active_keywords() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) total += shard.window.size();
  return total;
}

void UserIdSets::Save(BinaryWriter& out) const {
  SCPRT_CHECK(!quantum_open_);
  out.U32(static_cast<std::uint32_t>(kIdSetShards));
  out.U64(window_length_);
  for (const Shard& shard : shards_) {
    out.U32(static_cast<std::uint32_t>(shard.history.size()));
    for (const auto& entry : shard.history) {
      std::vector<std::pair<KeywordId, UserId>> sorted = entry;
      std::sort(sorted.begin(), sorted.end());
      out.U64(sorted.size());
      for (const auto& [keyword, user] : sorted) {
        out.U32(keyword);
        out.U32(user);
      }
    }
  }
}

bool UserIdSets::Restore(BinaryReader& in) {
  const auto reset = [this] {
    shards_.assign(kIdSetShards, Shard{});
    last_quantum_keywords_.clear();
    quantum_open_ = false;
  };
  reset();
  if (in.U32() != kIdSetShards || in.U64() != window_length_) {
    in.Fail();
    return false;
  }
  std::uint32_t depth0 = 0;
  for (std::size_t s = 0; s < kIdSetShards; ++s) {
    Shard& shard = shards_[s];
    const std::uint32_t depth = in.U32();
    if (s == 0) depth0 = depth;
    // Every quantum pushes one entry into every shard, so depths must
    // agree (and never exceed the window).
    if (depth != depth0 || depth > window_length_) {
      in.Fail();
      break;
    }
    for (std::uint32_t q = 0; q < depth; ++q) {
      const std::uint64_t pairs = in.U64();
      if (!in.CheckLength(pairs, 8)) break;
      std::vector<std::pair<KeywordId, UserId>> entry;
      entry.reserve(pairs);
      for (std::uint64_t i = 0; i < pairs; ++i) {
        const KeywordId keyword = in.U32();
        const UserId user = in.U32();
        // Canonical form: strictly ascending (so pairs are distinct) and
        // shard-local keywords.
        if (ShardOf(keyword) != s ||
            (!entry.empty() && entry.back() >= std::pair{keyword, user})) {
          in.Fail();
          break;
        }
        entry.emplace_back(keyword, user);
      }
      if (!in.ok()) break;
      const bool last = q + 1 == depth;
      for (const auto& [keyword, user] : entry) {
        ++shard.window[keyword][user];
        if (last) {
          if (shard.last_quantum_keywords.empty() ||
              shard.last_quantum_keywords.back() != keyword) {
            shard.last_quantum_keywords.push_back(keyword);
          }
          ++shard.last_quantum_support[keyword];
        }
      }
      shard.history.push_back(std::move(entry));
    }
    if (!in.ok()) break;
  }
  if (!in.ok()) {
    reset();
    return false;
  }
  MergeQuantumKeywords();
  return true;
}

}  // namespace scprt::akg
