#include "akg/id_sets.h"

#include <algorithm>

#include "common/check.h"

namespace scprt::akg {

UserIdSets::UserIdSets(std::size_t window_length)
    : window_length_(window_length) {
  SCPRT_CHECK(window_length >= 1);
}

void UserIdSets::BeginQuantum() {
  SCPRT_CHECK(!quantum_open_);
  quantum_open_ = true;
  current_.clear();
}

void UserIdSets::Add(KeywordId keyword, UserId user) {
  SCPRT_DCHECK(quantum_open_);
  current_[keyword].insert(user);
}

void UserIdSets::EndQuantum() {
  SCPRT_CHECK(quantum_open_);
  quantum_open_ = false;

  last_quantum_support_.clear();
  last_quantum_keywords_.clear();
  std::vector<std::pair<KeywordId, UserId>> compact;
  for (const auto& [keyword, users] : current_) {
    last_quantum_support_[keyword] =
        static_cast<std::uint32_t>(users.size());
    last_quantum_keywords_.push_back(keyword);
    UserCounts& counts = window_[keyword];
    for (UserId user : users) {
      ++counts[user];
      compact.emplace_back(keyword, user);
    }
  }
  current_.clear();
  history_.push_back(std::move(compact));

  if (history_.size() > window_length_) {
    for (const auto& [keyword, user] : history_.front()) {
      auto wit = window_.find(keyword);
      SCPRT_DCHECK(wit != window_.end());
      auto uit = wit->second.find(user);
      SCPRT_DCHECK(uit != wit->second.end());
      if (--uit->second == 0) wit->second.erase(uit);
      if (wit->second.empty()) window_.erase(wit);
    }
    history_.pop_front();
  }
}

std::size_t UserIdSets::QuantumSupport(KeywordId keyword) const {
  auto it = last_quantum_support_.find(keyword);
  return it == last_quantum_support_.end() ? 0 : it->second;
}

std::size_t UserIdSets::WindowSupport(KeywordId keyword) const {
  auto it = window_.find(keyword);
  return it == window_.end() ? 0 : it->second.size();
}

std::vector<UserId> UserIdSets::WindowUsers(KeywordId keyword) const {
  std::vector<UserId> users;
  auto it = window_.find(keyword);
  if (it == window_.end()) return users;
  users.reserve(it->second.size());
  for (const auto& [user, _] : it->second) users.push_back(user);
  return users;
}

double UserIdSets::Jaccard(KeywordId a, KeywordId b) const {
  auto ita = window_.find(a);
  auto itb = window_.find(b);
  if (ita == window_.end() || itb == window_.end()) return 0.0;
  const UserCounts* small = &ita->second;
  const UserCounts* large = &itb->second;
  if (small->size() > large->size()) std::swap(small, large);
  std::size_t intersection = 0;
  for (const auto& [user, _] : *small) {
    if (large->count(user)) ++intersection;
  }
  const std::size_t unioned = small->size() + large->size() - intersection;
  return unioned == 0
             ? 0.0
             : static_cast<double>(intersection) /
                   static_cast<double>(unioned);
}

}  // namespace scprt::akg
