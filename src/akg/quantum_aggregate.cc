#include "akg/quantum_aggregate.h"

#include <algorithm>
#include <unordered_map>

namespace scprt::akg {

QuantumAggregate CanonicalAggregate(
    std::unordered_map<KeywordId, std::vector<UserId>>&& users_of,
    QuantumIndex index) {
  QuantumAggregate aggregate;
  aggregate.index = index;
  aggregate.keywords.reserve(users_of.size());
  for (auto& [keyword, users] : users_of) {
    std::sort(users.begin(), users.end());
    QuantumAggregate::Entry entry;
    entry.keyword = keyword;
    // Run-length over the sorted occurrence list: distinct users with their
    // message counts.
    for (std::size_t i = 0; i < users.size();) {
      std::size_t j = i;
      while (j < users.size() && users[j] == users[i]) ++j;
      entry.users.push_back(users[i]);
      entry.counts.push_back(static_cast<std::uint32_t>(j - i));
      i = j;
    }
    aggregate.keywords.push_back(std::move(entry));
  }
  std::sort(
      aggregate.keywords.begin(), aggregate.keywords.end(),
      [](const auto& a, const auto& b) { return a.keyword < b.keyword; });
  return aggregate;
}

QuantumAggregate AggregateQuantum(const stream::Quantum& quantum) {
  std::unordered_map<KeywordId, std::vector<UserId>> users_of;
  for (const stream::Message& m : quantum.messages) {
    for (KeywordId k : m.keywords) users_of[k].push_back(m.user);
  }
  return CanonicalAggregate(std::move(users_of), quantum.index);
}

}  // namespace scprt::akg
