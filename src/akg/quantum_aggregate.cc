#include "akg/quantum_aggregate.h"

#include <algorithm>
#include <unordered_map>

namespace scprt::akg {

QuantumAggregate CanonicalAggregate(
    std::unordered_map<KeywordId, std::vector<UserId>>&& users_of,
    QuantumIndex index) {
  QuantumAggregate aggregate;
  aggregate.index = index;
  aggregate.keywords.reserve(users_of.size());
  for (auto& [keyword, users] : users_of) {
    std::sort(users.begin(), users.end());
    users.erase(std::unique(users.begin(), users.end()), users.end());
    aggregate.keywords.emplace_back(keyword, std::move(users));
  }
  std::sort(aggregate.keywords.begin(), aggregate.keywords.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return aggregate;
}

QuantumAggregate AggregateQuantum(const stream::Quantum& quantum) {
  std::unordered_map<KeywordId, std::vector<UserId>> users_of;
  for (const stream::Message& m : quantum.messages) {
    for (KeywordId k : m.keywords) users_of[k].push_back(m.user);
  }
  return CanonicalAggregate(std::move(users_of), quantum.index);
}

}  // namespace scprt::akg
