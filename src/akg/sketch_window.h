// Incremental per-quantum Min-Hash sketch ring over the sliding window.
//
// Where UserIdSets folds the quantum's (keyword, user) occurrences into
// window id sets, SketchWindow sketches them: each quantum deposits one
// bottom-p WeightedSketch per occurring keyword into a keyword-sharded ring
// (same partition law as UserIdSets — keyword % kShards), and a keyword's
// window signature is the pairwise Combine tree over its <= w per-quantum
// sketches instead of a rebuild from the folded window id set. Because
// Combine is exact under truncation, the tree's result is bit-identical to
// sketching the whole window union — at O(w * p) merge cost per keyword
// rather than O(|window id set|) rehash cost.
//
// Ingestion is shard-parallel (each shard owns disjoint keywords and its
// own ring), queries are read-only, and the ring's contents are a pure
// function of the ingested aggregates — no ordering anywhere depends on
// the thread count.

#ifndef SCPRT_AKG_SKETCH_WINDOW_H_
#define SCPRT_AKG_SKETCH_WINDOW_H_

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "akg/id_sets.h"
#include "akg/minhash.h"
#include "akg/quantum_aggregate.h"
#include "common/binary_io.h"
#include "common/parallel.h"
#include "common/types.h"

namespace scprt::akg {

/// Maintains per-quantum keyword sketches for the last `window_length`
/// quanta. One Ingest call per quantum, aligned with
/// UserIdSets::IngestAggregate.
class SketchWindow {
 public:
  /// Keyword shards — the same fixed partition as the id-set store, so one
  /// shard task can fold both structures for its keywords.
  static constexpr std::size_t kShards = UserIdSets::kIdSetShards;

  /// `window_length` is the paper's w (>= 1); `p`, `seed` and `weighted`
  /// configure the sketcher.
  SketchWindow(std::size_t window_length, std::size_t p, std::uint64_t seed,
               bool weighted);

  /// The configured sketcher (p, seed, weighted flag).
  const WeightedMinHasher& hasher() const { return hasher_; }

  /// Sketches one quantum's aggregate onto the ring (per-shard tasks run
  /// through `parallel_for`; serial when null) and expires the quantum
  /// falling out of the window.
  void Ingest(const QuantumAggregate& aggregate,
              const ParallelForFn& parallel_for);

  /// The keyword's window sketch: fixed-shape Combine tree over its
  /// per-quantum sketches, oldest first. Empty when the keyword did not
  /// occur in the window. In unweighted mode its Values() equal
  /// MinHasher::Signature of the window id set bit for bit.
  WeightedSketch WindowSketch(KeywordId keyword) const;

  /// Quanta currently retained (<= window length; uniform across shards).
  std::size_t depth() const { return shards_[0].ring.size(); }

  /// Drops every retained quantum.
  void Clear();

  /// Rebuilds the ring from restored id-set histories — the per-quantum
  /// distinct (keyword, user) pairs are exactly the unweighted generating
  /// state, so unweighted snapshots need not carry the ring at all.
  /// Unweighted mode only: weighted scores depend on per-quantum message
  /// counts the histories do not record, so weighted rings round-trip
  /// through Save/Restore instead.
  void RebuildFromHistory(const UserIdSets& sets);

  /// Serializes the ring in canonical order (shards ascending, slots
  /// oldest first, keywords ascending, entries in sketch order).
  void Save(BinaryWriter& out) const;

  /// Replaces the ring with Save()'s encoding. Returns false on malformed
  /// input (the ring is cleared then).
  bool Restore(BinaryReader& in);

 private:
  /// One quantum's sketches for one shard's keywords, keyword-ascending.
  using Slot = std::vector<std::pair<KeywordId, WeightedSketch>>;

  struct Shard {
    /// Closed quanta, oldest first.
    std::deque<Slot> ring;
  };

  static std::size_t ShardOf(KeywordId keyword) { return keyword % kShards; }

  std::size_t window_length_;
  WeightedMinHasher hasher_;
  std::vector<Shard> shards_{kShards};
};

}  // namespace scprt::akg

#endif  // SCPRT_AKG_SKETCH_WINDOW_H_
