// The two-state (low/high) keyword automaton with hysteresis that decides
// AKG membership (Section 3.1).
//
// A keyword enters the AKG when it is bursty in a quantum: used by >= theta
// (the High State Threshold) distinct users. It stays while it is part of an
// event cluster, irrespective of subsequent frequency; it is evicted when it
// becomes stale (no occurrence in the last w quanta) or when it has neither
// been bursty in the last w quanta nor belongs to any cluster (the paper's
// lazy update, smoothed over the window).

#ifndef SCPRT_AKG_NODE_STATE_H_
#define SCPRT_AKG_NODE_STATE_H_

#include <functional>
#include <unordered_map>
#include <vector>

#include "common/binary_io.h"
#include "common/types.h"

namespace scprt::akg {

/// Per-quantum transition report.
struct NodeStateUpdate {
  /// Keywords newly admitted to the AKG this quantum (low -> high).
  std::vector<KeywordId> entered;
  /// All keywords in high state this quantum — the paper's set (1). A
  /// superset of `entered`.
  std::vector<KeywordId> bursty;
  /// Keywords already in the AKG that occurred this quantum without being
  /// bursty — the paper's set (2) minus set (1).
  std::vector<KeywordId> seen_in_akg;
  /// Keywords evicted from the AKG this quantum.
  std::vector<KeywordId> removed;
};

/// Tracks low/high state for every keyword ever seen.
class NodeStateAutomaton {
 public:
  /// `high_threshold` is theta (distinct users/quantum); `window_length` is
  /// w, used for both the staleness and the burst-recency horizon.
  NodeStateAutomaton(std::uint32_t high_threshold,
                     std::size_t window_length);

  /// Processes one closed quantum. `quantum_keywords` lists keywords that
  /// occurred, with their distinct-user counts; `now` is the quantum index;
  /// `in_cluster` reports whether a keyword currently belongs to any
  /// discovered cluster (AKG retention rule).
  NodeStateUpdate ProcessQuantum(
      QuantumIndex now,
      const std::vector<std::pair<KeywordId, std::uint32_t>>&
          quantum_keywords,
      const std::function<bool(KeywordId)>& in_cluster);

  /// True if the keyword is currently an AKG node.
  bool InAkg(KeywordId keyword) const { return akg_.count(keyword) > 0; }

  /// Number of AKG nodes.
  std::size_t akg_size() const { return akg_.size(); }

  /// Number of keywords tracked (CKG-side node count over history; entries
  /// older than w quanta are pruned, so this approximates the CKG node
  /// count of the current window).
  std::size_t tracked_keywords() const { return last_seen_.size(); }

  std::uint32_t high_threshold() const { return high_threshold_; }

  /// Serializes the automaton (last-seen / last-bursty stamps and AKG
  /// membership) keyword-sorted, so equal states give identical bytes.
  void Save(BinaryWriter& out) const;

  /// Replaces this automaton's state with Save()'s encoding. Returns false
  /// on malformed input; the automaton is cleared then.
  bool Restore(BinaryReader& in);

 private:
  std::uint32_t high_threshold_;
  std::size_t window_length_;
  // Last quantum each keyword occurred in any message (prune when stale).
  std::unordered_map<KeywordId, QuantumIndex> last_seen_;
  // Last quantum each keyword was bursty. Only grows for AKG members.
  std::unordered_map<KeywordId, QuantumIndex> last_bursty_;
  // Current AKG membership.
  std::unordered_map<KeywordId, bool> akg_;
};

}  // namespace scprt::akg

#endif  // SCPRT_AKG_NODE_STATE_H_
