#include "akg/minhash.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/parallel.h"

namespace scprt::akg {

namespace {

// Salt decorrelating the per-(user, quantum) weighted draws from the key
// stream itself (the key is already one SplitMix64 of the user id).
constexpr std::uint64_t kQuantumSalt = 0xc0ac29b7c97c50ddULL;

// Monotone map of a 64-bit key into [0, 1). The double rounding may merge
// neighbouring keys into one score, but the key tie-break restores the
// exact key order — so an unweighted sketch's (score, key) order IS the
// key order, and its bottom-p equals the unweighted bottom-p hash values.
double UnitScore(std::uint64_t key) {
  return static_cast<double>(key) * 0x1.0p-64;
}

// Bounded insertion: keep the bottom-p of the stream under SketchOrderLess using
// a max-heap of the current survivors.
void PushBottomP(WeightedSketch& sketch, const SketchEntry& entry,
                 std::size_t p) {
  if (sketch.size() < p) {
    sketch.push_back(entry);
    std::push_heap(sketch.begin(), sketch.end(), SketchOrderLess);
  } else if (SketchOrderLess(entry, sketch.front())) {
    std::pop_heap(sketch.begin(), sketch.end(), SketchOrderLess);
    sketch.back() = entry;
    std::push_heap(sketch.begin(), sketch.end(), SketchOrderLess);
  }
}

}  // namespace

bool SketchOrderLess(const SketchEntry& a, const SketchEntry& b) {
  if (a.score != b.score) return a.score < b.score;
  return a.key < b.key;
}

MinHasher::MinHasher(std::size_t p, std::uint64_t seed) : p_(p), hash_(seed) {
  SCPRT_CHECK(p >= 1);
}

MinHashSignature MinHasher::Signature(
    const std::vector<UserId>& users) const {
  MinHashSignature sig;
  sig.reserve(std::min(p_, users.size()));
  for (UserId user : users) {
    const std::uint64_t h = hash_(user);
    // The hash is bijective, so only a repeated input id can repeat a
    // value; the linear membership scan (p <= 16 in practice) keeps each
    // distinct id in at most one bottom-p slot.
    if (sig.size() < p_) {
      if (std::find(sig.begin(), sig.end(), h) != sig.end()) continue;
      sig.push_back(h);
      std::push_heap(sig.begin(), sig.end());  // max-heap of the bottom-p
    } else if (h < sig.front()) {
      if (std::find(sig.begin(), sig.end(), h) != sig.end()) continue;
      std::pop_heap(sig.begin(), sig.end());
      sig.back() = h;
      std::push_heap(sig.begin(), sig.end());
    }
  }
  std::sort(sig.begin(), sig.end());
  return sig;
}

bool MinHasher::SharesValue(const MinHashSignature& a,
                            const MinHashSignature& b) {
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return true;
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

double MinHasher::EstimateJaccard(const MinHashSignature& a,
                                  const MinHashSignature& b, std::size_t p) {
  if (a.empty() || b.empty()) return 0.0;
  // Bottom-p of the union by sorted merge under set semantics: each
  // distinct value counts once toward the sample no matter how many list
  // entries carry it. When both lists exhaust before p values are taken,
  // the sample is the whole union and the estimate is the exact Jaccard of
  // the value sets (the small-set case |A u B| < p).
  std::size_t i = 0, j = 0, taken = 0, shared = 0;
  while (taken < p && (i < a.size() || j < b.size())) {
    std::uint64_t value;
    if (j == b.size() || (i < a.size() && a[i] < b[j])) {
      value = a[i];
    } else {
      value = b[j];
    }
    const bool in_a = i < a.size() && a[i] == value;
    const bool in_b = j < b.size() && b[j] == value;
    while (i < a.size() && a[i] == value) ++i;
    while (j < b.size() && b[j] == value) ++j;
    if (in_a && in_b) ++shared;
    ++taken;
  }
  return taken == 0 ? 0.0
                    : static_cast<double>(shared) /
                          static_cast<double>(taken);
}

WeightedMinHasher::WeightedMinHasher(std::size_t p, std::uint64_t seed,
                                     bool weighted)
    : p_(p), weighted_(weighted), hash_(seed) {
  SCPRT_CHECK(p >= 1);
}

WeightedSketch WeightedMinHasher::QuantumSketch(
    QuantumIndex quantum, const std::vector<UserId>& users,
    const std::vector<std::uint32_t>& counts) const {
  SCPRT_DCHECK(!weighted_ || counts.size() == users.size());
  WeightedSketch sketch;
  sketch.reserve(std::min(p_, users.size()));
  for (std::size_t i = 0; i < users.size(); ++i) {
    SketchEntry entry;
    entry.key = hash_(users[i]);
    if (weighted_) {
      // One independent Exp(1) draw per (user, quantum), scaled by the
      // user's message count this quantum. Min-merging the draws across
      // quanta yields Exp(sum of counts) — additive weighting emerges
      // from the same Combine that merges everything else.
      const std::uint64_t d = SplitMix64(
          entry.key ^
          SplitMix64(static_cast<std::uint64_t>(quantum) ^ kQuantumSalt));
      const double u01 = (static_cast<double>(d >> 11) + 1.0) * 0x1.0p-53;
      entry.score = -std::log(u01) / static_cast<double>(counts[i]);
    } else {
      entry.score = UnitScore(entry.key);
    }
    PushBottomP(sketch, entry, p_);
  }
  std::sort(sketch.begin(), sketch.end(), SketchOrderLess);
  return sketch;
}

WeightedSketch WeightedMinHasher::Combine(const WeightedSketch& a,
                                          const WeightedSketch& b,
                                          std::size_t p) {
  WeightedSketch out;
  out.reserve(std::min(p, a.size() + b.size()));
  std::size_t i = 0, j = 0;
  while (out.size() < p && (i < a.size() || j < b.size())) {
    const SketchEntry* next;
    if (j == b.size() || (i < a.size() && SketchOrderLess(a[i], b[j]))) {
      next = &a[i++];
    } else {
      next = &b[j++];
    }
    // A key present in both inputs surfaces first with its minimum score;
    // the later (larger) occurrence must not claim a second slot.
    bool seen = false;
    for (const SketchEntry& e : out) {
      if (e.key == next->key) {
        seen = true;
        break;
      }
    }
    if (!seen) out.push_back(*next);
  }
  return out;
}

WeightedSketch WeightedMinHasher::CombineTree(std::vector<WeightedSketch> parts,
                                              std::size_t p) {
  return TreeReduce(
      std::move(parts),
      [p](WeightedSketch a, WeightedSketch b) { return Combine(a, b, p); },
      nullptr);
}

MinHashSignature WeightedMinHasher::Values(const WeightedSketch& sketch) {
  MinHashSignature values;
  values.reserve(sketch.size());
  for (const SketchEntry& entry : sketch) values.push_back(entry.key);
  std::sort(values.begin(), values.end());
  return values;
}

WeightedSketch WeightedMinHasher::FromValues(const MinHashSignature& values) {
  WeightedSketch sketch;
  sketch.reserve(values.size());
  // Ascending keys give ascending (score, key) under the monotone unit
  // score, so the result is already in sketch order.
  for (std::uint64_t key : values) sketch.push_back({key, UnitScore(key)});
  return sketch;
}

double WeightedMinHasher::EstimateResemblance(const WeightedSketch& a,
                                              const WeightedSketch& b,
                                              std::size_t p) {
  if (a.empty() || b.empty()) return 0.0;
  const WeightedSketch merged = Combine(a, b, p);
  const auto has_key = [](const WeightedSketch& sketch, std::uint64_t key) {
    for (const SketchEntry& entry : sketch) {
      if (entry.key == key) return true;
    }
    return false;
  };
  std::size_t shared = 0;
  for (const SketchEntry& entry : merged) {
    if (has_key(a, entry.key) && has_key(b, entry.key)) ++shared;
  }
  return merged.empty() ? 0.0
                        : static_cast<double>(shared) /
                              static_cast<double>(merged.size());
}

double WeightedMinHasher::EstimateDistinctUsers(const WeightedSketch& sketch,
                                                std::size_t p) {
  if (sketch.empty()) return 0.0;
  // Below p the sketch holds every distinct key: the count is exact.
  if (sketch.size() < p) return static_cast<double>(sketch.size());
  std::uint64_t max_key = 0;
  for (const SketchEntry& entry : sketch) {
    max_key = std::max(max_key, entry.key);
  }
  // KMV: with p uniform samples in [0, 1), E[max] = p/(D+1), so
  // D ≈ (p-1)/max. The keys are bijective hashes of distinct user ids, so
  // message counts never move this estimate.
  const double frac = static_cast<double>(max_key) * 0x1.0p-64;
  if (frac <= 0.0) return static_cast<double>(sketch.size());
  return static_cast<double>(p - 1) / frac;
}

std::size_t DefaultMinHashSize(std::uint32_t high_threshold,
                               double ec_threshold) {
  SCPRT_CHECK(ec_threshold > 0.0);
  // Both terms of min(theta/2, 1/gamma) round up: theta/2 via
  // (theta + 1) / 2 — flooring an odd theta would undershoot the paper's
  // real-valued formula and shrink the signature below its resolution.
  const std::size_t from_theta = (high_threshold + 1) / 2;
  const std::size_t from_gamma =
      static_cast<std::size_t>(std::ceil(1.0 / ec_threshold));
  const std::size_t p = std::min(from_theta, from_gamma);
  return std::clamp<std::size_t>(p, 2, 16);
}

}  // namespace scprt::akg
