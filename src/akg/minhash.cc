#include "akg/minhash.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace scprt::akg {

MinHasher::MinHasher(std::size_t p, std::uint64_t seed) : p_(p), hash_(seed) {
  SCPRT_CHECK(p >= 1);
}

MinHashSignature MinHasher::Signature(
    const std::vector<UserId>& users) const {
  MinHashSignature sig;
  sig.reserve(std::min(p_, users.size()));
  for (UserId user : users) {
    const std::uint64_t h = hash_(user);
    if (sig.size() < p_) {
      sig.push_back(h);
      std::push_heap(sig.begin(), sig.end());  // max-heap of the bottom-p
    } else if (h < sig.front()) {
      std::pop_heap(sig.begin(), sig.end());
      sig.back() = h;
      std::push_heap(sig.begin(), sig.end());
    }
  }
  std::sort(sig.begin(), sig.end());
  return sig;
}

bool MinHasher::SharesValue(const MinHashSignature& a,
                            const MinHashSignature& b) {
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return true;
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

double MinHasher::EstimateJaccard(const MinHashSignature& a,
                                  const MinHashSignature& b, std::size_t p) {
  if (a.empty() || b.empty()) return 0.0;
  // Bottom-p of the union by sorted merge (values are distinct with
  // overwhelming probability under a 64-bit hash).
  std::size_t i = 0, j = 0, taken = 0, shared = 0;
  while (taken < p && (i < a.size() || j < b.size())) {
    if (j == b.size() || (i < a.size() && a[i] < b[j])) {
      ++i;
    } else if (i == a.size() || b[j] < a[i]) {
      ++j;
    } else {
      ++shared;
      ++i;
      ++j;
    }
    ++taken;
  }
  return taken == 0 ? 0.0
                    : static_cast<double>(shared) /
                          static_cast<double>(taken);
}

std::size_t DefaultMinHashSize(std::uint32_t high_threshold,
                               double ec_threshold) {
  SCPRT_CHECK(ec_threshold > 0.0);
  const std::size_t from_theta = high_threshold / 2;
  const std::size_t from_gamma =
      static_cast<std::size_t>(std::ceil(1.0 / ec_threshold));
  const std::size_t p = std::min(from_theta, from_gamma);
  return std::clamp<std::size_t>(p, 2, 16);
}

}  // namespace scprt::akg
