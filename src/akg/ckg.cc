#include "akg/ckg.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "common/check.h"

namespace scprt::akg {

WindowedCkg::WindowedCkg(std::size_t window_length)
    : window_length_(window_length) {
  SCPRT_CHECK(window_length >= 1);
}

void WindowedCkg::PushQuantum(const stream::Quantum& quantum) {
  // Spatial correlation is per *user* per quantum (Section 3.2): collect
  // each user's keyword set, then contribute all pairs.
  std::unordered_map<UserId, std::unordered_set<KeywordId>> per_user;
  for (const stream::Message& m : quantum.messages) {
    auto& set = per_user[m.user];
    for (KeywordId k : m.keywords) set.insert(k);
  }

  QuantumContribution contribution;
  for (const auto& [user, keywords] : per_user) {
    (void)user;
    std::vector<KeywordId> sorted(keywords.begin(), keywords.end());
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      ++contribution.nodes[sorted[i]];
      for (std::size_t j = i + 1; j < sorted.size(); ++j) {
        ++contribution.edges[EdgeKey(sorted[i], sorted[j])];
      }
    }
  }
  for (const auto& [key, count] : contribution.edges) edges_[key] += count;
  for (const auto& [key, count] : contribution.nodes) nodes_[key] += count;
  history_.push_back(std::move(contribution));

  if (history_.size() > window_length_) {
    const QuantumContribution& old = history_.front();
    for (const auto& [key, count] : old.edges) {
      auto it = edges_.find(key);
      SCPRT_DCHECK(it != edges_.end());
      if ((it->second -= count) == 0) edges_.erase(it);
    }
    for (const auto& [key, count] : old.nodes) {
      auto it = nodes_.find(key);
      SCPRT_DCHECK(it != nodes_.end());
      if ((it->second -= count) == 0) nodes_.erase(it);
    }
    history_.pop_front();
  }
}

bool WindowedCkg::HasEdge(KeywordId a, KeywordId b) const {
  return edges_.count(EdgeKey(a, b)) > 0;
}

}  // namespace scprt::akg
