// Edge-correlation computation policy: exact Jaccard over id sets, Min-Hash
// screened, or pure Min-Hash estimate (Section 3.2).

#ifndef SCPRT_AKG_CORRELATION_H_
#define SCPRT_AKG_CORRELATION_H_

#include "akg/id_sets.h"
#include "akg/minhash.h"
#include "common/types.h"

namespace scprt::akg {

/// How edge correlations are obtained.
enum class EcMode {
  /// Exact Jaccard on every candidate pair (no Min-Hash) — the reference.
  kExact,
  /// Min-Hash candidate screen (shared signature value), exact Jaccard to
  /// confirm — the recommended production mode.
  kMinHashScreenExactVerify,
  /// Min-Hash only: the bottom-p estimate is the EC (fastest; small false
  /// positive/negative rates, Section 3.2.2).
  kMinHashOnly,
};

/// Computes the EC of pair (a, b) under `mode`. `sig_a`/`sig_b` may be
/// empty in kExact mode. `weighted` selects the weighted-sketch resemblance
/// in kMinHashOnly mode — the weighting lives in the sketch evidence; the
/// exact modes stay set-semantics Jaccard either way. Returns the
/// correlation in [0, 1].
double ComputeEc(EcMode mode, bool weighted, const UserIdSets& sets,
                 KeywordId a, KeywordId b, const KeywordSignature& sig_a,
                 const KeywordSignature& sig_b, std::size_t p);

/// Pre-screen: true if the pair may have EC > 0 worth computing.
bool PassesScreen(EcMode mode, const MinHashSignature& sig_a,
                  const MinHashSignature& sig_b);

}  // namespace scprt::akg

#endif  // SCPRT_AKG_CORRELATION_H_
