#include "akg/correlation.h"

namespace scprt::akg {

double ComputeEc(EcMode mode, bool weighted, const UserIdSets& sets,
                 KeywordId a, KeywordId b, const KeywordSignature& sig_a,
                 const KeywordSignature& sig_b, std::size_t p) {
  switch (mode) {
    case EcMode::kExact:
    case EcMode::kMinHashScreenExactVerify:
      return sets.Jaccard(a, b);
    case EcMode::kMinHashOnly:
      return weighted ? WeightedMinHasher::EstimateResemblance(
                            sig_a.sketch, sig_b.sketch, p)
                      : MinHasher::EstimateJaccard(sig_a.values, sig_b.values,
                                                   p);
  }
  return 0.0;
}

bool PassesScreen(EcMode mode, const MinHashSignature& sig_a,
                  const MinHashSignature& sig_b) {
  if (mode == EcMode::kExact) return true;
  return MinHasher::SharesValue(sig_a, sig_b);
}

}  // namespace scprt::akg
