#include "akg/akg_builder.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <unordered_set>
#include <utility>

#include "common/check.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace scprt::akg {

using graph::Edge;

namespace {

std::size_t ResolveMinHashSize(const AkgConfig& config) {
  return config.minhash_size > 0
             ? config.minhash_size
             : DefaultMinHashSize(config.high_state_threshold,
                                  config.ec_threshold);
}

}  // namespace

AkgBuilder::AkgBuilder(const AkgConfig& config,
                       std::function<bool(KeywordId)> in_cluster)
    : config_(config),
      in_cluster_(std::move(in_cluster)),
      id_sets_(config.window_length),
      node_state_(config.high_state_threshold, config.window_length),
      sketch_window_(config.window_length, ResolveMinHashSize(config),
                     config.seed, config.weighted_minhash) {
  SCPRT_CHECK(config.ec_threshold > 0.0 && config.ec_threshold <= 1.0);
  SCPRT_CHECK(in_cluster_ != nullptr);
}

double AkgBuilder::EdgeCorrelation(const Edge& e) const {
  auto it = edge_ec_.find(e);
  return it == edge_ec_.end() ? 0.0 : it->second;
}

GraphDelta AkgBuilder::ProcessQuantum(const stream::Quantum& quantum) {
  return ProcessAggregate(AggregateQuantum(quantum));
}

GraphDelta AkgBuilder::ProcessAggregate(const QuantumAggregate& aggregate) {
  GraphDelta delta;
  delta.quantum = aggregate.index;
  now_ = aggregate.index;
  last_stats_ = AkgQuantumStats{};

  // --- 1. Ingest the quantum's (keyword, user) aggregate into id sets and
  //        the per-quantum sketch ring; both folds + expiries run
  //        keyword-shard-parallel ---
  {
    // Sketch-ring ingest cost (id-set fold + per-quantum Min-Hash build);
    // batch-level timing only — per-keyword clocks would swamp the work.
    static obs::Histogram* const sketch_hist =
        obs::Registry::Default().GetHistogram("akg.sketch_ingest_ns");
    obs::ScopedSpan span("akg.sketch");
    obs::ScopedHistogramTimer timer(sketch_hist);
    id_sets_.IngestAggregate(aggregate, parallel_for_);
    sketch_window_.Ingest(aggregate, parallel_for_);
  }

  // --- 2. Node state transitions (Section 3.1) ---
  std::vector<std::pair<KeywordId, std::uint32_t>> quantum_keywords;
  quantum_keywords.reserve(id_sets_.QuantumKeywords().size());
  for (KeywordId k : id_sets_.QuantumKeywords()) {
    quantum_keywords.emplace_back(
        k, static_cast<std::uint32_t>(id_sets_.QuantumSupport(k)));
  }
  const NodeStateUpdate update =
      node_state_.ProcessQuantum(now_, quantum_keywords, in_cluster_);
  delta.nodes_added = update.entered;

  // --- 3. Evict removed nodes and their edges ---
  for (KeywordId k : update.removed) {
    if (akg_.HasNode(k)) {
      for (KeywordId neighbor : akg_.Neighbors(k)) {
        const Edge e = Edge::Of(k, neighbor);
        delta.edges_removed.push_back(e);
        edge_ec_.erase(e);
      }
      akg_.RemoveNode(k);
    }
    signatures_.erase(k);
    delta.nodes_removed.push_back(k);
  }
  for (KeywordId k : update.entered) akg_.AddNode(k);

  // --- 4. Refresh signatures of keywords whose id sets changed and are
  //        relevant this quantum: set (1) bursty + set (2) AKG-and-seen.
  //        Each window sketch is a Combine tree over the keyword's cached
  //        per-quantum sketches (no rehash of the folded window id set);
  //        sketches depend only on their own ring entries, so the batch
  //        runs through the parallel hook; writes into signatures_ stay on
  //        this thread. ---
  std::vector<KeywordId> refresh = update.bursty;
  refresh.insert(refresh.end(), update.seen_in_akg.begin(),
                 update.seen_in_akg.end());
  std::vector<KeywordSignature> refreshed(refresh.size());
  {
    // Window-sketch Combine-tree cost for the whole refresh batch — the
    // per-quantum merge bill of the sketch window.
    static obs::Histogram* const refresh_hist =
        obs::Registry::Default().GetHistogram("akg.signature_refresh_ns");
    obs::ScopedSpan span("akg.refresh");
    obs::ScopedHistogramTimer timer(refresh_hist);
    parallel_for_(refresh.size(), [&](std::size_t i) {
      refreshed[i].sketch = sketch_window_.WindowSketch(refresh[i]);
      refreshed[i].values = WeightedMinHasher::Values(refreshed[i].sketch);
    });
  }
  for (std::size_t i = 0; i < refresh.size(); ++i) {
    signatures_[refresh[i]] = std::move(refreshed[i]);
  }

  // --- 5. New edges among set (1) (Section 3.2.1): bucket-join on shared
  //        Min-Hash values to avoid the quadratic pair scan ---
  const double gamma = config_.ec_threshold;
  std::vector<std::pair<KeywordId, KeywordId>> candidates;
  if (config_.ec_mode == EcMode::kExact) {
    for (std::size_t i = 0; i < update.bursty.size(); ++i) {
      for (std::size_t j = i + 1; j < update.bursty.size(); ++j) {
        candidates.emplace_back(update.bursty[i], update.bursty[j]);
      }
    }
  } else {
    std::unordered_map<std::uint64_t, std::vector<KeywordId>> buckets;
    for (KeywordId k : update.bursty) {
      for (std::uint64_t h : signatures_[k].values) buckets[h].push_back(k);
    }
    std::unordered_set<std::uint64_t> emitted;
    for (const auto& [h, members] : buckets) {
      if (members.size() < 2) continue;
      for (std::size_t i = 0; i < members.size(); ++i) {
        for (std::size_t j = i + 1; j < members.size(); ++j) {
          KeywordId a = members[i], b = members[j];
          if (a > b) std::swap(a, b);
          const std::uint64_t key =
              (static_cast<std::uint64_t>(a) << 32) | b;
          if (emitted.insert(key).second) candidates.emplace_back(a, b);
        }
      }
    }
  }
  last_stats_.pairs_screened = candidates.size();

  // Screen serially (cheap signature comparison), batch the EC
  // computations through the parallel hook (pure reads of id sets and
  // signatures), then apply results in candidate order.
  std::vector<std::pair<KeywordId, KeywordId>> add_jobs;
  for (const auto& [a, b] : candidates) {
    if (akg_.HasEdge(a, b)) continue;
    if (!PassesScreen(config_.ec_mode, signatures_[a].values,
                      signatures_[b].values)) {
      continue;
    }
    add_jobs.emplace_back(a, b);
  }
  std::vector<double> add_ecs(add_jobs.size());
  parallel_for_(add_jobs.size(), [&](std::size_t i) {
    const auto [a, b] = add_jobs[i];
    add_ecs[i] = ComputeEc(config_.ec_mode, config_.weighted_minhash,
                           id_sets_, a, b, signatures_.at(a),
                           signatures_.at(b), sketch_window_.hasher().p());
  });
  last_stats_.ec_computed += add_jobs.size();
  for (std::size_t i = 0; i < add_jobs.size(); ++i) {
    const auto [a, b] = add_jobs[i];
    const double ec = add_ecs[i];
    if (ec >= gamma) {
      akg_.AddEdge(a, b);
      const Edge e = Edge::Of(a, b);
      edge_ec_[e] = ec;
      delta.edges_added.emplace_back(e, ec);
    }
  }

  // --- 6. Lazy re-validation (Section 3.2.1 set (2)): keywords seen this
  //        quantum update the EC with their current neighbors; edges whose
  //        correlation fell below gamma are dropped ---
  // The pair set is fixed up front (removals below can only drop pairs
  // that are already in the batch), so the EC batch runs through the
  // parallel hook; EC reads only id sets and signatures, which the
  // removals do not touch. Results apply in collection order. The touched
  // set is exactly the signature-refresh set built in step 4.
  std::unordered_set<std::uint64_t> revalidated;
  std::vector<std::pair<KeywordId, KeywordId>> reval_jobs;
  for (KeywordId k : refresh) {
    if (!akg_.HasNode(k)) continue;
    for (KeywordId neighbor : akg_.Neighbors(k)) {
      KeywordId a = k, b = neighbor;
      if (a > b) std::swap(a, b);
      const std::uint64_t key = (static_cast<std::uint64_t>(a) << 32) | b;
      if (revalidated.insert(key).second) reval_jobs.emplace_back(a, b);
    }
  }
  std::vector<double> reval_ecs(reval_jobs.size());
  parallel_for_(reval_jobs.size(), [&](std::size_t i) {
    const auto [a, b] = reval_jobs[i];
    // Both signatures may be stale for the untouched endpoint; EC is
    // computed from exact id sets except in kMinHashOnly mode.
    reval_ecs[i] = ComputeEc(config_.ec_mode, config_.weighted_minhash,
                             id_sets_, a, b, signatures_.at(a),
                             signatures_.at(b), sketch_window_.hasher().p());
  });
  last_stats_.ec_computed += reval_jobs.size();
  for (std::size_t i = 0; i < reval_jobs.size(); ++i) {
    const auto [a, b] = reval_jobs[i];
    const Edge e = Edge::Of(a, b);
    const double ec = reval_ecs[i];
    if (ec < gamma) {
      akg_.RemoveEdge(a, b);
      edge_ec_.erase(e);
      delta.edges_removed.push_back(e);
    } else if (ec != edge_ec_[e]) {
      edge_ec_[e] = ec;
      delta.ec_updated.emplace_back(e, ec);
    }
  }

  // --- 7. Stats snapshot (Section 7.4) ---
  last_stats_.ckg_nodes = node_state_.tracked_keywords();
  last_stats_.quantum_keywords = quantum_keywords.size();
  last_stats_.akg_nodes = akg_.node_count();
  last_stats_.akg_edges = akg_.edge_count();
  last_stats_.bursty = update.bursty.size();
  return delta;
}

WeightedSketch AkgBuilder::ExportClusterSketch(
    const std::vector<KeywordId>& keywords) const {
  const std::size_t p = sketch_window_.hasher().p();
  std::vector<WeightedSketch> parts;
  parts.reserve(keywords.size());
  for (KeywordId keyword : keywords) {
    const auto it = signatures_.find(keyword);
    if (it != signatures_.end() && !it->second.sketch.empty()) {
      parts.push_back(it->second.sketch);
    }
  }
  return WeightedMinHasher::CombineTree(std::move(parts), p);
}

std::size_t AkgBuilder::sketch_size() const {
  return sketch_window_.hasher().p();
}

void AkgBuilder::Save(BinaryWriter& out) const {
  out.I64(now_);
  id_sets_.Save(out);
  node_state_.Save(out);
  akg_.Save(out);

  std::vector<KeywordId> signed_keywords;
  signed_keywords.reserve(signatures_.size());
  for (const auto& [keyword, _] : signatures_) {
    signed_keywords.push_back(keyword);
  }
  std::sort(signed_keywords.begin(), signed_keywords.end());
  out.U64(signed_keywords.size());
  for (KeywordId keyword : signed_keywords) {
    const KeywordSignature& sig = signatures_.at(keyword);
    out.U32(keyword);
    out.U32(static_cast<std::uint32_t>(sig.values.size()));
    for (std::uint64_t value : sig.values) out.U64(value);
    if (config_.weighted_minhash) {
      // One score per value, value-aligned: the realized weighted draws
      // cannot be recomputed from the id sets (message counts are gone),
      // so they ride along. Unweighted scores are a pure function of the
      // value — the encoding above stays byte-identical to version 3.
      for (std::uint64_t value : sig.values) {
        double score = 0.0;
        for (const SketchEntry& entry : sig.sketch) {
          if (entry.key == value) {
            score = entry.score;
            break;
          }
        }
        out.F64(score);
      }
    }
  }
  if (config_.weighted_minhash) sketch_window_.Save(out);

  std::vector<Edge> ec_edges;
  ec_edges.reserve(edge_ec_.size());
  for (const auto& [e, _] : edge_ec_) ec_edges.push_back(e);
  std::sort(ec_edges.begin(), ec_edges.end());
  out.U64(ec_edges.size());
  for (const Edge& e : ec_edges) {
    out.U32(e.u);
    out.U32(e.v);
    out.F64(edge_ec_.at(e));
  }

  out.U64(last_stats_.ckg_nodes);
  out.U64(last_stats_.quantum_keywords);
  out.U64(last_stats_.akg_nodes);
  out.U64(last_stats_.akg_edges);
  out.U64(last_stats_.bursty);
  out.U64(last_stats_.pairs_screened);
  out.U64(last_stats_.ec_computed);
}

bool AkgBuilder::Restore(BinaryReader& in) {
  const auto reset = [this] {
    akg_.Clear();
    edge_ec_.clear();
    signatures_.clear();
    sketch_window_.Clear();
    last_stats_ = AkgQuantumStats{};
    now_ = 0;
  };
  reset();
  now_ = in.I64();
  if (!id_sets_.Restore(in) || !node_state_.Restore(in) ||
      !akg_.Restore(in)) {
    reset();
    return false;
  }

  const std::size_t p = sketch_window_.hasher().p();
  const std::uint64_t signatures = in.U64();
  bool valid = in.CheckLength(signatures, 4 + 4 + 8);
  for (std::uint64_t i = 0; valid && i < signatures; ++i) {
    const KeywordId keyword = in.U32();
    const std::uint32_t length = in.U32();
    // A signature holds at most p values by construction.
    if (length > p || !in.CheckLength(length, 8)) {
      valid = false;
      break;
    }
    KeywordSignature sig;
    sig.values.resize(length);
    for (std::uint32_t j = 0; j < length; ++j) sig.values[j] = in.U64();
    // Strictly ascending: the values are distinct sketch keys.
    if (!in.ok() ||
        std::adjacent_find(sig.values.begin(), sig.values.end(),
                           std::greater_equal<std::uint64_t>()) !=
            sig.values.end()) {
      valid = false;
      break;
    }
    if (config_.weighted_minhash) {
      // Value-aligned realized scores; the sketch is the (key, score)
      // pairs in sketch order.
      if (!in.CheckLength(length, 8)) {
        valid = false;
        break;
      }
      sig.sketch.reserve(length);
      for (std::uint32_t j = 0; j < length; ++j) {
        const double score = in.F64();
        if (!std::isfinite(score) || score < 0.0) {
          valid = false;
          break;
        }
        sig.sketch.push_back({sig.values[j], score});
      }
      if (!valid || !in.ok()) {
        valid = false;
        break;
      }
      std::sort(sig.sketch.begin(), sig.sketch.end(), SketchOrderLess);
    } else {
      sig.sketch = WeightedMinHasher::FromValues(sig.values);
    }
    if (!signatures_.emplace(keyword, std::move(sig)).second) {
      valid = false;
      break;
    }
  }

  // The sketch ring: serialized in weighted mode, refolded from the id-set
  // histories otherwise. Either way its depth must agree with the
  // histories' — the two structures expire in lockstep.
  if (valid) {
    if (config_.weighted_minhash) {
      valid = sketch_window_.Restore(in) &&
              sketch_window_.depth() == id_sets_.HistoryDepth();
    } else {
      sketch_window_.RebuildFromHistory(id_sets_);
    }
  }

  const std::uint64_t correlations = valid ? in.U64() : 0;
  valid = valid && in.CheckLength(correlations, 4 + 4 + 8);
  for (std::uint64_t i = 0; valid && i < correlations; ++i) {
    const KeywordId u = in.U32();
    const KeywordId v = in.U32();
    const double ec = in.F64();
    // Correlations exist exactly for AKG edges, in [0, 1].
    if (!in.ok() || u >= v || !akg_.HasEdge(u, v) || !(ec >= 0.0) ||
        !(ec <= 1.0) ||
        !edge_ec_.emplace(Edge{u, v}, ec).second) {
      valid = false;
      break;
    }
  }
  valid = valid && correlations == akg_.edge_count();

  // The lazy re-validation loop calls signatures_.at() on every AKG edge
  // endpoint, so that invariant must hold even for a forged payload with a
  // valid CRC — reject rather than crash later.
  if (valid) {
    for (const Edge& e : akg_.Edges()) {
      if (signatures_.count(e.u) == 0 || signatures_.count(e.v) == 0) {
        valid = false;
        break;
      }
    }
  }

  last_stats_.ckg_nodes = in.U64();
  last_stats_.quantum_keywords = in.U64();
  last_stats_.akg_nodes = in.U64();
  last_stats_.akg_edges = in.U64();
  last_stats_.bursty = in.U64();
  last_stats_.pairs_screened = in.U64();
  last_stats_.ec_computed = in.U64();

  if (!valid || !in.ok()) {
    reset();
    in.Fail();
    return false;
  }
  return true;
}

}  // namespace scprt::akg
