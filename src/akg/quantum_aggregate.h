// Canonical per-quantum ingest form: every keyword that occurred in the
// quantum with its distinct users and their message counts, keywords
// ascending, each user list sorted ascending. Aggregates built from the
// same quantum compare equal no matter how they were produced — serially
// (AggregateQuantum) or merged from keyword shards
// (engine/parallel_detector.cc) — which is what makes the parallel
// engine's reports bit-identical to the serial detector's.

#ifndef SCPRT_AKG_QUANTUM_AGGREGATE_H_
#define SCPRT_AKG_QUANTUM_AGGREGATE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "stream/message.h"

namespace scprt::akg {

/// One quantum reduced to per-keyword occurrence lists in canonical order.
struct QuantumAggregate {
  /// One keyword's quantum occurrences: `users` sorted ascending and
  /// distinct; `counts[i]` is the number of messages by `users[i]`
  /// mentioning the keyword this quantum (>= 1). The counts are a pure
  /// function of the quantum's (keyword, user) occurrence multiset, so
  /// every build path produces identical values.
  struct Entry {
    KeywordId keyword = 0;
    std::vector<UserId> users;
    std::vector<std::uint32_t> counts;
    friend bool operator==(const Entry&, const Entry&) = default;
  };

  QuantumIndex index = 0;
  /// Sorted by keyword.
  std::vector<Entry> keywords;
};

/// Canonicalizes a raw keyword -> users gather (user lists carry one entry
/// per occurrence — duplicates become counts — in any order) into an
/// aggregate. The single definition of the canonical form —
/// AggregateQuantum and the engine's sharded reduce both end here, which
/// is what keeps their outputs comparable.
QuantumAggregate CanonicalAggregate(
    std::unordered_map<KeywordId, std::vector<UserId>>&& users_of,
    QuantumIndex index);

/// Reduces one quantum serially. The parallel engine produces the same
/// value by routing (keyword, user) pairs to keyword shards and reducing
/// each shard through CanonicalAggregate.
QuantumAggregate AggregateQuantum(const stream::Quantum& quantum);

}  // namespace scprt::akg

#endif  // SCPRT_AKG_QUANTUM_AGGREGATE_H_
