// Canonical per-quantum ingest form: every keyword that occurred in the
// quantum with its distinct users, keywords ascending, each user list
// sorted ascending. Aggregates built from the same quantum compare equal no
// matter how they were produced — serially (AggregateQuantum) or merged
// from keyword shards (engine/parallel_detector.cc) — which is what makes
// the parallel engine's reports bit-identical to the serial detector's.

#ifndef SCPRT_AKG_QUANTUM_AGGREGATE_H_
#define SCPRT_AKG_QUANTUM_AGGREGATE_H_

#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.h"
#include "stream/message.h"

namespace scprt::akg {

/// One quantum reduced to (keyword, distinct users) in canonical order.
struct QuantumAggregate {
  QuantumIndex index = 0;
  /// Sorted by keyword; each user vector sorted and de-duplicated.
  std::vector<std::pair<KeywordId, std::vector<UserId>>> keywords;
};

/// Canonicalizes a raw keyword -> users gather (user lists may contain
/// duplicates, in any order) into an aggregate. The single definition of
/// the canonical form — AggregateQuantum and the engine's sharded reduce
/// both end here, which is what keeps their outputs comparable.
QuantumAggregate CanonicalAggregate(
    std::unordered_map<KeywordId, std::vector<UserId>>&& users_of,
    QuantumIndex index);

/// Reduces one quantum serially. The parallel engine produces the same
/// value by routing (keyword, user) pairs to keyword shards and reducing
/// each shard through CanonicalAggregate.
QuantumAggregate AggregateQuantum(const stream::Quantum& quantum);

}  // namespace scprt::akg

#endif  // SCPRT_AKG_QUANTUM_AGGREGATE_H_
