// Per-quantum AKG construction (Section 3): consumes the message stream,
// maintains the two-state node automaton, id sets and Min-Hash signatures,
// and emits the node/edge delta that the cluster maintainer applies.

#ifndef SCPRT_AKG_AKG_BUILDER_H_
#define SCPRT_AKG_AKG_BUILDER_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "akg/correlation.h"
#include "akg/id_sets.h"
#include "akg/minhash.h"
#include "akg/node_state.h"
#include "akg/quantum_aggregate.h"
#include "akg/sketch_window.h"
#include "common/binary_io.h"
#include "common/parallel.h"
#include "graph/graph.h"
#include "stream/message.h"

namespace scprt::akg {

/// Tunables of the AKG layer (paper Table 2 nominal values).
struct AkgConfig {
  /// theta: distinct users/quantum for a keyword to reach high state.
  std::uint32_t high_state_threshold = 4;
  /// gamma: minimum EC for an edge.
  double ec_threshold = 0.20;
  /// w: window length in quanta.
  std::size_t window_length = 30;
  /// p: Min-Hash signature size; 0 derives the paper's default
  /// min(theta/2, 1/gamma).
  std::size_t minhash_size = 0;
  /// Correlation policy.
  EcMode ec_mode = EcMode::kMinHashScreenExactVerify;
  /// Seed of the Min-Hash function.
  std::uint64_t seed = 0x5ca1ab1eULL;
  /// Weight Min-Hash sketches by per-user message count instead of mere
  /// presence (the frequency dimension the paper's unweighted id sets
  /// lack). Off by default: unweighted signatures are bit-identical to the
  /// historical scheme, so golden traces stay valid. Changes the snapshot
  /// encoding — weighted state needs container version >= 4.
  bool weighted_minhash = false;
};

/// The per-quantum structural delta for the cluster maintainer. Application
/// order: nodes_removed (removes their incident edges), edges_removed,
/// edges_added. `ec_updated` carries re-computed correlations of surviving
/// edges (ranking input, no structural effect).
struct GraphDelta {
  QuantumIndex quantum = 0;
  std::vector<KeywordId> nodes_added;
  std::vector<KeywordId> nodes_removed;
  std::vector<std::pair<graph::Edge, double>> edges_added;
  std::vector<graph::Edge> edges_removed;
  std::vector<std::pair<graph::Edge, double>> ec_updated;
};

/// Size statistics for the CKG-vs-AKG comparison (Section 7.4).
struct AkgQuantumStats {
  /// Distinct keywords tracked over the window horizon (~ CKG nodes).
  std::size_t ckg_nodes = 0;
  /// Distinct keywords occurring in this quantum.
  std::size_t quantum_keywords = 0;
  /// Current AKG node count.
  std::size_t akg_nodes = 0;
  /// Current AKG edge count.
  std::size_t akg_edges = 0;
  /// Bursty keywords this quantum.
  std::size_t bursty = 0;
  /// Candidate pairs screened / EC computations done this quantum.
  std::size_t pairs_screened = 0;
  std::size_t ec_computed = 0;
};

/// Builds and maintains the AKG. The caller owns the cluster layer and
/// passes an `in_cluster` predicate for the node-retention rule.
class AkgBuilder {
 public:
  AkgBuilder(const AkgConfig& config,
             std::function<bool(KeywordId)> in_cluster);

  /// Processes one quantum of messages and returns the structural delta.
  /// Equivalent to ProcessAggregate(AggregateQuantum(quantum)).
  GraphDelta ProcessQuantum(const stream::Quantum& quantum);

  /// Processes one quantum already reduced to its canonical aggregate (the
  /// parallel engine builds the aggregate on keyword shards). The delta is
  /// identical to ProcessQuantum on the originating quantum.
  GraphDelta ProcessAggregate(const QuantumAggregate& aggregate);

  /// Installs the hook used for the pure per-item hot loops (signature
  /// refresh, EC batches). The delta is identical under any hook; pass
  /// nullptr to restore the serial default.
  void set_parallel_for(ParallelForFn parallel_for) {
    parallel_for_ = parallel_for ? std::move(parallel_for) : SerialFor;
  }

  /// The AKG as a graph (mirror of what the deltas described).
  const graph::DynamicGraph& akg() const { return akg_; }

  /// Current EC of an AKG edge (0 if absent).
  double EdgeCorrelation(const graph::Edge& e) const;

  /// Node weight w_i for ranking: distinct users of the keyword in the
  /// window.
  std::size_t NodeWeight(KeywordId keyword) const {
    return id_sets_.WindowSupport(keyword);
  }

  /// Exports a cluster-level user sketch: the Combine tree of the member
  /// keywords' current window sketches, bottom-p overall. Because Combine
  /// is first-key-wins, a user active in several member keywords (or
  /// spamming one of them) still occupies exactly one slot — the sketch is
  /// a deduped distinct-user signature of the whole cluster, suitable for
  /// persisting into the event store at report time. Keywords without a
  /// live signature contribute nothing. Deterministic for a given member
  /// list (callers pass the snapshot's sorted keyword set).
  WeightedSketch ExportClusterSketch(
      const std::vector<KeywordId>& keywords) const;

  /// Sketch size p of the exported sketches (config-derived).
  std::size_t sketch_size() const;

  const UserIdSets& id_sets() const { return id_sets_; }
  const NodeStateAutomaton& node_state() const { return node_state_; }
  const AkgQuantumStats& last_stats() const { return last_stats_; }
  const AkgConfig& config() const { return config_; }

  /// Serializes every derived structure of the AKG layer — id-set window
  /// histories, node automaton, Min-Hash signatures, edge correlations
  /// (bit-exact doubles), the graph and the quantum clock — in canonical
  /// order. The hash function itself is config-derived and not stored.
  /// Unweighted builders write the historical (version-3) encoding byte
  /// for byte; weighted builders add per-signature scores and the sketch
  /// ring (docs/formats.md, weighted signatures).
  void Save(BinaryWriter& out) const;

  /// Replaces this builder's state with Save()'s encoding. Must be called
  /// on a builder constructed with the same AkgConfig. Returns false on
  /// malformed input; the builder is reset to empty in that case.
  bool Restore(BinaryReader& in);

 private:
  AkgConfig config_;
  ParallelForFn parallel_for_ = SerialFor;
  std::function<bool(KeywordId)> in_cluster_;
  UserIdSets id_sets_;
  NodeStateAutomaton node_state_;
  // Per-quantum sketch ring: window signatures come from its Combine tree,
  // never from rehashing the folded window id set.
  SketchWindow sketch_window_;
  graph::DynamicGraph akg_;
  std::unordered_map<graph::Edge, double, graph::EdgeHash> edge_ec_;
  std::unordered_map<KeywordId, KeywordSignature> signatures_;
  AkgQuantumStats last_stats_;
  QuantumIndex now_ = 0;
};

}  // namespace scprt::akg

#endif  // SCPRT_AKG_AKG_BUILDER_H_
