#include "akg/sketch_window.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace scprt::akg {

SketchWindow::SketchWindow(std::size_t window_length, std::size_t p,
                           std::uint64_t seed, bool weighted)
    : window_length_(window_length), hasher_(p, seed, weighted) {
  SCPRT_CHECK(window_length >= 1);
}

void SketchWindow::Ingest(const QuantumAggregate& aggregate,
                          const ParallelForFn& parallel_for) {
  // One routing pass up front, mirroring UserIdSets::IngestAggregate; the
  // aggregate is keyword-ascending, so each shard's owned indices — and
  // with them its slot — stay keyword-ascending too.
  std::vector<std::vector<std::uint32_t>> owned(kShards);
  for (std::uint32_t i = 0; i < aggregate.keywords.size(); ++i) {
    owned[ShardOf(aggregate.keywords[i].keyword)].push_back(i);
  }
  const auto sketch_shard = [&](std::size_t s) {
    Shard& shard = shards_[s];
    Slot slot;
    slot.reserve(owned[s].size());
    for (std::uint32_t i : owned[s]) {
      const QuantumAggregate::Entry& entry = aggregate.keywords[i];
      slot.emplace_back(entry.keyword,
                        hasher_.QuantumSketch(aggregate.index, entry.users,
                                              entry.counts));
    }
    shard.ring.push_back(std::move(slot));
    if (shard.ring.size() > window_length_) shard.ring.pop_front();
  };
  if (parallel_for) {
    parallel_for(kShards, sketch_shard);
  } else {
    SerialFor(kShards, sketch_shard);
  }
}

WeightedSketch SketchWindow::WindowSketch(KeywordId keyword) const {
  const Shard& shard = shards_[ShardOf(keyword)];
  std::vector<WeightedSketch> parts;
  parts.reserve(shard.ring.size());
  for (const Slot& slot : shard.ring) {
    const auto it = std::lower_bound(
        slot.begin(), slot.end(), keyword,
        [](const auto& entry, KeywordId k) { return entry.first < k; });
    if (it != slot.end() && it->first == keyword) parts.push_back(it->second);
  }
  return WeightedMinHasher::CombineTree(std::move(parts), hasher_.p());
}

void SketchWindow::Clear() { shards_.assign(kShards, Shard{}); }

void SketchWindow::RebuildFromHistory(const UserIdSets& sets) {
  SCPRT_CHECK(!hasher_.weighted());
  Clear();
  const std::size_t depth = sets.HistoryDepth();
  for (Shard& shard : shards_) shard.ring.resize(depth);
  sets.VisitHistory([&](std::size_t s, std::size_t slot_index,
                        const std::vector<std::pair<KeywordId, UserId>>&
                            pairs) {
    // Sort a copy so keyword runs are contiguous (history order is only
    // canonical after a restore; don't depend on it).
    std::vector<std::pair<KeywordId, UserId>> sorted = pairs;
    std::sort(sorted.begin(), sorted.end());
    Slot& slot = shards_[s].ring[slot_index];
    std::vector<UserId> users;
    for (std::size_t i = 0; i < sorted.size();) {
      const KeywordId keyword = sorted[i].first;
      users.clear();
      while (i < sorted.size() && sorted[i].first == keyword) {
        users.push_back(sorted[i].second);
        ++i;
      }
      // Quantum index 0 is fine: unweighted scores are key-only.
      slot.emplace_back(keyword, hasher_.QuantumSketch(0, users, {}));
    }
  });
}

void SketchWindow::Save(BinaryWriter& out) const {
  out.U32(static_cast<std::uint32_t>(kShards));
  out.U64(window_length_);
  out.U32(static_cast<std::uint32_t>(depth()));
  for (const Shard& shard : shards_) {
    for (const Slot& slot : shard.ring) {
      out.U64(slot.size());
      for (const auto& [keyword, sketch] : slot) {
        out.U32(keyword);
        out.U32(static_cast<std::uint32_t>(sketch.size()));
        for (const SketchEntry& entry : sketch) {
          out.U64(entry.key);
          out.F64(entry.score);
        }
      }
    }
  }
}

bool SketchWindow::Restore(BinaryReader& in) {
  Clear();
  const std::size_t p = hasher_.p();
  if (in.U32() != kShards || in.U64() != window_length_) {
    in.Fail();
    return false;
  }
  const std::uint32_t depth = in.U32();
  if (!in.ok() || depth > window_length_) {
    in.Fail();
    return false;
  }
  bool valid = true;
  for (std::size_t s = 0; valid && s < kShards; ++s) {
    Shard& shard = shards_[s];
    for (std::uint32_t q = 0; valid && q < depth; ++q) {
      const std::uint64_t entries = in.U64();
      if (!in.CheckLength(entries, 4 + 4)) {
        valid = false;
        break;
      }
      Slot slot;
      slot.reserve(entries);
      for (std::uint64_t e = 0; valid && e < entries; ++e) {
        const KeywordId keyword = in.U32();
        const std::uint32_t size = in.U32();
        // Canonical form: keywords strictly ascending and shard-local, a
        // sketch of at most p entries in strict sketch order with distinct
        // keys and finite non-negative scores.
        if (ShardOf(keyword) != s ||
            (!slot.empty() && slot.back().first >= keyword) || size > p ||
            !in.CheckLength(size, 8 + 8)) {
          valid = false;
          break;
        }
        WeightedSketch sketch;
        sketch.reserve(size);
        for (std::uint32_t k = 0; k < size; ++k) {
          SketchEntry entry;
          entry.key = in.U64();
          entry.score = in.F64();
          if (!std::isfinite(entry.score) || entry.score < 0.0 ||
              (!sketch.empty() &&
               !SketchOrderLess(sketch.back(), entry))) {
            valid = false;
            break;
          }
          for (const SketchEntry& prior : sketch) {
            if (prior.key == entry.key) {
              valid = false;
              break;
            }
          }
          if (!valid) break;
          sketch.push_back(entry);
        }
        if (!valid || !in.ok()) {
          valid = false;
          break;
        }
        slot.emplace_back(keyword, std::move(sketch));
      }
      if (!valid) break;
      shard.ring.push_back(std::move(slot));
    }
  }
  if (!valid || !in.ok()) {
    Clear();
    in.Fail();
    return false;
  }
  return true;
}

}  // namespace scprt::akg
