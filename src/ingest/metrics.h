// Live ingest metrics: lock-free counters written by the reader, the
// tokenizer workers and the collector, snapshotable at any time from any
// thread (a monitoring thread polls Snapshot() while the pipeline runs).
//
// Since the obs layer landed this is a facade: every counter is a handle
// into an obs::Registry (Registry::Default() unless a test injects its
// own), so the same numbers the pipeline reports through Snapshot() are
// visible to Registry::SnapshotAll() — one Prometheus scrape covers
// ingest, engine, and durability together. The per-run API is unchanged:
// Reset() re-baselines before each Run(), Snapshot() copies, Format() /
// FormatJson() render. Only start/recovery timestamps stay local — they
// describe this pipeline instance, not the process.

#ifndef SCPRT_INGEST_METRICS_H_
#define SCPRT_INGEST_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "obs/registry.h"

namespace scprt::ingest {

/// Monotonic nanoseconds — the one clock for tokenize-latency accounting
/// and elapsed-time baselines (keeping the two on the same source).
inline std::int64_t MonotonicNanos() { return obs::MonotonicNanos(); }

/// Point-in-time copy of the counters, plus derived rates.
struct IngestSnapshot {
  std::uint64_t records_read = 0;     ///< pulled from the source
  std::uint64_t malformed = 0;        ///< skipped by the source as unparsable
  std::uint64_t admitted = 0;         ///< accepted into staging queues
  std::uint64_t shed = 0;             ///< dropped by the admission policy
  std::uint64_t messages_emitted = 0; ///< delivered to the sink
  std::uint64_t quanta_emitted = 0;   ///< quanta cut by the assembler
  std::uint64_t tokens = 0;           ///< raw tokens produced by workers
  std::uint64_t keywords = 0;         ///< keywords surviving filters
  std::uint64_t tokenize_ns = 0;      ///< summed worker tokenize time
  std::uint64_t peak_queue_depth = 0; ///< max staging depth ever observed
  std::uint64_t queue_depth = 0;      ///< staging depth at snapshot time
  std::uint64_t checkpoints = 0;      ///< checkpoints written this run
  std::uint64_t checkpoint_bytes = 0; ///< bytes written to checkpoints
  std::uint64_t checkpoint_ns = 0;    ///< wall time spent checkpointing
  std::uint64_t commits = 0;          ///< durable commits (WAL appends incl.)
  std::uint64_t commit_bytes = 0;     ///< bytes written by commits
  std::uint64_t commit_ns = 0;        ///< wall time stalled on commits
  std::uint64_t checkpoint_failures = 0; ///< commit attempts that failed
  std::uint64_t sync_failures = 0;    ///< fsync/fdatasync calls that failed
  double recovery_seconds = 0;        ///< load+seek cost of a resume, else 0
  double elapsed_seconds = 0;         ///< wall time (Run() start to snapshot)
  double uptime_seconds = 0;          ///< process uptime (monotonic clock)
  double process_start_unix = 0;      ///< wall-clock anchor of the uptime

  /// Source-to-sink throughput; 0 before any time elapses.
  double MessagesPerSecond() const {
    return elapsed_seconds > 0
               ? static_cast<double>(messages_emitted) / elapsed_seconds
               : 0.0;
  }
  /// Mean tokenize cost per emitted message, in microseconds.
  double TokenizeMicrosPerMessage() const {
    return messages_emitted > 0 ? static_cast<double>(tokenize_ns) / 1e3 /
                                      static_cast<double>(messages_emitted)
                                : 0.0;
  }
  /// Mean cost of one checkpoint, in milliseconds (the durability tax the
  /// operator trades against recovery-point age — docs/operations.md).
  double CheckpointMillis() const {
    return checkpoints > 0 ? static_cast<double>(checkpoint_ns) / 1e6 /
                                 static_cast<double>(checkpoints)
                           : 0.0;
  }
  /// Mean stall of one durable commit, in microseconds. Under the WAL
  /// backend this is the per-quantum append cost — the number to hold
  /// against CheckpointMillis when picking a backend.
  double CommitMicros() const {
    return commits > 0 ? static_cast<double>(commit_ns) / 1e3 /
                             static_cast<double>(commits)
                       : 0.0;
  }

  /// One-line human rendering.
  std::string Format() const;
  /// Flat JSON object (machine-readable bench/monitoring output). Carries
  /// every raw counter plus the derived rates above, so monitoring sees
  /// the same numbers Format() prints.
  std::string FormatJson() const;
};

/// The live counters. Writers use relaxed atomics — counts are statistics,
/// not synchronization; the pipeline's queues order the data itself.
class IngestMetrics {
 public:
  /// Binds to `registry`, or to obs::Registry::Default() when null.
  /// Tests that need isolation from the process-wide registry pass their
  /// own; the pipeline default keeps all instances on the shared one
  /// (instances are per-run and Reset() re-baselines).
  explicit IngestMetrics(obs::Registry* registry = nullptr);

  void AddRecordsRead(std::uint64_t n) { records_read_->Add(n); }
  void AddMalformed(std::uint64_t n) { malformed_->Add(n); }
  void AddAdmitted(std::uint64_t n) { admitted_->Add(n); }
  void AddShed(std::uint64_t n) { shed_->Add(n); }
  void AddMessagesEmitted(std::uint64_t n) { messages_emitted_->Add(n); }
  void AddQuantaEmitted(std::uint64_t n) { quanta_emitted_->Add(n); }
  void AddTokens(std::uint64_t n) { tokens_->Add(n); }
  void AddKeywords(std::uint64_t n) { keywords_->Add(n); }
  void AddTokenizeNs(std::uint64_t n) { tokenize_ns_->Add(n); }

  /// One checkpoint written: its size and the wall time it cost.
  void AddCheckpoint(std::uint64_t bytes, std::uint64_t ns) {
    checkpoints_->Increment();
    checkpoint_bytes_->Add(bytes);
    checkpoint_ns_->Add(ns);
  }

  /// One durable commit (a WAL record append or a checkpoint file): its
  /// size and the pipeline stall it cost.
  void AddCommit(std::uint64_t bytes, std::uint64_t ns) {
    commits_->Increment();
    commit_bytes_->Add(bytes);
    commit_ns_->Add(ns);
  }

  /// A commit attempt failed (typed reason lives with the caller); the
  /// stream keeps flowing, the recovery point ages.
  void AddCheckpointFailure() { checkpoint_failures_->Increment(); }

  /// An fsync/fdatasync failed: bytes may be in the kernel, but the
  /// commit's power-loss durability could not be established.
  void AddSyncFailure(std::uint64_t n) { sync_failures_->Add(n); }

  /// Recovery cost (load + delta replay + source seek) of the resume that
  /// preceded this run. Survives Reset() — it describes how the run began.
  void SetRecoveryNs(std::uint64_t ns) {
    recovery_ns_.store(ns, std::memory_order_relaxed);
  }

  /// Records the staging depth just observed: raises the lifetime peak
  /// watermark and sets the current-depth gauge. The pair separates a
  /// one-off spike (peak high, current low) from sustained backpressure
  /// (both high) — the signal the admission controller will walk on.
  void ObserveQueueDepth(std::uint64_t depth) {
    peak_queue_depth_->MaxWith(depth);
    queue_depth_->Set(static_cast<double>(depth));
  }

  /// Zeroes every counter and restamps the elapsed-time baseline; each
  /// IngestPipeline::Run starts from a clean slate so the returned
  /// snapshot describes that run alone.
  void Reset();

  /// Copies every counter; callable concurrently with writers.
  IngestSnapshot Snapshot() const;

 private:
  obs::Counter* records_read_;
  obs::Counter* malformed_;
  obs::Counter* admitted_;
  obs::Counter* shed_;
  obs::Counter* messages_emitted_;
  obs::Counter* quanta_emitted_;
  obs::Counter* tokens_;
  obs::Counter* keywords_;
  obs::Counter* tokenize_ns_;
  obs::Counter* peak_queue_depth_;
  obs::Gauge* queue_depth_;
  obs::Counter* checkpoints_;
  obs::Counter* checkpoint_bytes_;
  obs::Counter* checkpoint_ns_;
  obs::Counter* commits_;
  obs::Counter* commit_bytes_;
  obs::Counter* commit_ns_;
  obs::Counter* checkpoint_failures_;
  obs::Counter* sync_failures_;
  std::atomic<std::uint64_t> recovery_ns_{0};
  std::atomic<std::int64_t> start_ns_{0};
};

}  // namespace scprt::ingest

#endif  // SCPRT_INGEST_METRICS_H_
