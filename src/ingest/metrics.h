// Live ingest metrics: lock-free counters written by the reader, the
// tokenizer workers and the collector, snapshotable at any time from any
// thread (a monitoring thread polls Snapshot() while the pipeline runs).

#ifndef SCPRT_INGEST_METRICS_H_
#define SCPRT_INGEST_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace scprt::ingest {

/// Monotonic nanoseconds — the one clock for tokenize-latency accounting
/// and elapsed-time baselines (keeping the two on the same source).
inline std::int64_t MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Point-in-time copy of the counters, plus derived rates.
struct IngestSnapshot {
  std::uint64_t records_read = 0;     ///< pulled from the source
  std::uint64_t malformed = 0;        ///< skipped by the source as unparsable
  std::uint64_t admitted = 0;         ///< accepted into staging queues
  std::uint64_t shed = 0;             ///< dropped by the admission policy
  std::uint64_t messages_emitted = 0; ///< delivered to the sink
  std::uint64_t quanta_emitted = 0;   ///< quanta cut by the assembler
  std::uint64_t tokens = 0;           ///< raw tokens produced by workers
  std::uint64_t keywords = 0;         ///< keywords surviving filters
  std::uint64_t tokenize_ns = 0;      ///< summed worker tokenize time
  std::uint64_t peak_queue_depth = 0; ///< max staging depth ever observed
  std::uint64_t checkpoints = 0;      ///< checkpoints written this run
  std::uint64_t checkpoint_bytes = 0; ///< bytes written to checkpoints
  std::uint64_t checkpoint_ns = 0;    ///< wall time spent checkpointing
  std::uint64_t commits = 0;          ///< durable commits (WAL appends incl.)
  std::uint64_t commit_bytes = 0;     ///< bytes written by commits
  std::uint64_t commit_ns = 0;        ///< wall time stalled on commits
  std::uint64_t checkpoint_failures = 0; ///< commit attempts that failed
  std::uint64_t sync_failures = 0;    ///< fsync/fdatasync calls that failed
  double recovery_seconds = 0;        ///< load+seek cost of a resume, else 0
  double elapsed_seconds = 0;         ///< wall time (Run() start to snapshot)

  /// Source-to-sink throughput; 0 before any time elapses.
  double MessagesPerSecond() const {
    return elapsed_seconds > 0
               ? static_cast<double>(messages_emitted) / elapsed_seconds
               : 0.0;
  }
  /// Mean tokenize cost per emitted message, in microseconds.
  double TokenizeMicrosPerMessage() const {
    return messages_emitted > 0 ? static_cast<double>(tokenize_ns) / 1e3 /
                                      static_cast<double>(messages_emitted)
                                : 0.0;
  }
  /// Mean cost of one checkpoint, in milliseconds (the durability tax the
  /// operator trades against recovery-point age — docs/operations.md).
  double CheckpointMillis() const {
    return checkpoints > 0 ? static_cast<double>(checkpoint_ns) / 1e6 /
                                 static_cast<double>(checkpoints)
                           : 0.0;
  }
  /// Mean stall of one durable commit, in microseconds. Under the WAL
  /// backend this is the per-quantum append cost — the number to hold
  /// against CheckpointMillis when picking a backend.
  double CommitMicros() const {
    return commits > 0 ? static_cast<double>(commit_ns) / 1e3 /
                             static_cast<double>(commits)
                       : 0.0;
  }

  /// One-line human rendering.
  std::string Format() const;
  /// Flat JSON object (machine-readable bench/monitoring output).
  std::string FormatJson() const;
};

/// The live counters. Writers use relaxed atomics — counts are statistics,
/// not synchronization; the pipeline's queues order the data itself.
class IngestMetrics {
 public:
  void AddRecordsRead(std::uint64_t n) { Add(records_read_, n); }
  void AddMalformed(std::uint64_t n) { Add(malformed_, n); }
  void AddAdmitted(std::uint64_t n) { Add(admitted_, n); }
  void AddShed(std::uint64_t n) { Add(shed_, n); }
  void AddMessagesEmitted(std::uint64_t n) { Add(messages_emitted_, n); }
  void AddQuantaEmitted(std::uint64_t n) { Add(quanta_emitted_, n); }
  void AddTokens(std::uint64_t n) { Add(tokens_, n); }
  void AddKeywords(std::uint64_t n) { Add(keywords_, n); }
  void AddTokenizeNs(std::uint64_t n) { Add(tokenize_ns_, n); }

  /// One checkpoint written: its size and the wall time it cost.
  void AddCheckpoint(std::uint64_t bytes, std::uint64_t ns) {
    Add(checkpoints_, 1);
    Add(checkpoint_bytes_, bytes);
    Add(checkpoint_ns_, ns);
  }

  /// One durable commit (a WAL record append or a checkpoint file): its
  /// size and the pipeline stall it cost.
  void AddCommit(std::uint64_t bytes, std::uint64_t ns) {
    Add(commits_, 1);
    Add(commit_bytes_, bytes);
    Add(commit_ns_, ns);
  }

  /// A commit attempt failed (typed reason lives with the caller); the
  /// stream keeps flowing, the recovery point ages.
  void AddCheckpointFailure() { Add(checkpoint_failures_, 1); }

  /// An fsync/fdatasync failed: bytes may be in the kernel, but the
  /// commit's power-loss durability could not be established.
  void AddSyncFailure(std::uint64_t n) { Add(sync_failures_, n); }

  /// Recovery cost (load + delta replay + source seek) of the resume that
  /// preceded this run. Survives Reset() — it describes how the run began.
  void SetRecoveryNs(std::uint64_t ns) {
    recovery_ns_.store(ns, std::memory_order_relaxed);
  }

  /// Raises the peak staging-queue depth watermark to at least `depth`.
  void ObserveQueueDepth(std::uint64_t depth) {
    std::uint64_t seen = peak_queue_depth_.load(std::memory_order_relaxed);
    while (depth > seen && !peak_queue_depth_.compare_exchange_weak(
                               seen, depth, std::memory_order_relaxed)) {
    }
  }

  /// Zeroes every counter and restamps the elapsed-time baseline; each
  /// IngestPipeline::Run starts from a clean slate so the returned
  /// snapshot describes that run alone.
  void Reset();

  /// Copies every counter; callable concurrently with writers.
  IngestSnapshot Snapshot() const;

 private:
  static void Add(std::atomic<std::uint64_t>& counter, std::uint64_t n) {
    counter.fetch_add(n, std::memory_order_relaxed);
  }

  std::atomic<std::uint64_t> records_read_{0};
  std::atomic<std::uint64_t> malformed_{0};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> messages_emitted_{0};
  std::atomic<std::uint64_t> quanta_emitted_{0};
  std::atomic<std::uint64_t> tokens_{0};
  std::atomic<std::uint64_t> keywords_{0};
  std::atomic<std::uint64_t> tokenize_ns_{0};
  std::atomic<std::uint64_t> peak_queue_depth_{0};
  std::atomic<std::uint64_t> checkpoints_{0};
  std::atomic<std::uint64_t> checkpoint_bytes_{0};
  std::atomic<std::uint64_t> checkpoint_ns_{0};
  std::atomic<std::uint64_t> commits_{0};
  std::atomic<std::uint64_t> commit_bytes_{0};
  std::atomic<std::uint64_t> commit_ns_{0};
  std::atomic<std::uint64_t> checkpoint_failures_{0};
  std::atomic<std::uint64_t> sync_failures_{0};
  std::atomic<std::uint64_t> recovery_ns_{0};
  std::atomic<std::int64_t> start_ns_{0};
};

}  // namespace scprt::ingest

#endif  // SCPRT_INGEST_METRICS_H_
