#include "ingest/metrics.h"

#include <cstdio>

namespace scprt::ingest {

void IngestMetrics::Reset() {
  records_read_.store(0, std::memory_order_relaxed);
  malformed_.store(0, std::memory_order_relaxed);
  admitted_.store(0, std::memory_order_relaxed);
  shed_.store(0, std::memory_order_relaxed);
  messages_emitted_.store(0, std::memory_order_relaxed);
  quanta_emitted_.store(0, std::memory_order_relaxed);
  tokens_.store(0, std::memory_order_relaxed);
  keywords_.store(0, std::memory_order_relaxed);
  tokenize_ns_.store(0, std::memory_order_relaxed);
  peak_queue_depth_.store(0, std::memory_order_relaxed);
  checkpoints_.store(0, std::memory_order_relaxed);
  checkpoint_bytes_.store(0, std::memory_order_relaxed);
  checkpoint_ns_.store(0, std::memory_order_relaxed);
  commits_.store(0, std::memory_order_relaxed);
  commit_bytes_.store(0, std::memory_order_relaxed);
  commit_ns_.store(0, std::memory_order_relaxed);
  checkpoint_failures_.store(0, std::memory_order_relaxed);
  sync_failures_.store(0, std::memory_order_relaxed);
  // recovery_ns_ deliberately survives: it is set by the resume that led
  // into the Run whose Reset this is.
  start_ns_.store(MonotonicNanos(), std::memory_order_relaxed);
}

IngestSnapshot IngestMetrics::Snapshot() const {
  IngestSnapshot s;
  s.records_read = records_read_.load(std::memory_order_relaxed);
  s.malformed = malformed_.load(std::memory_order_relaxed);
  s.admitted = admitted_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.messages_emitted = messages_emitted_.load(std::memory_order_relaxed);
  s.quanta_emitted = quanta_emitted_.load(std::memory_order_relaxed);
  s.tokens = tokens_.load(std::memory_order_relaxed);
  s.keywords = keywords_.load(std::memory_order_relaxed);
  s.tokenize_ns = tokenize_ns_.load(std::memory_order_relaxed);
  s.peak_queue_depth = peak_queue_depth_.load(std::memory_order_relaxed);
  s.checkpoints = checkpoints_.load(std::memory_order_relaxed);
  s.checkpoint_bytes = checkpoint_bytes_.load(std::memory_order_relaxed);
  s.checkpoint_ns = checkpoint_ns_.load(std::memory_order_relaxed);
  s.commits = commits_.load(std::memory_order_relaxed);
  s.commit_bytes = commit_bytes_.load(std::memory_order_relaxed);
  s.commit_ns = commit_ns_.load(std::memory_order_relaxed);
  s.checkpoint_failures =
      checkpoint_failures_.load(std::memory_order_relaxed);
  s.sync_failures = sync_failures_.load(std::memory_order_relaxed);
  s.recovery_seconds =
      static_cast<double>(recovery_ns_.load(std::memory_order_relaxed)) /
      1e9;
  const std::int64_t start = start_ns_.load(std::memory_order_relaxed);
  s.elapsed_seconds =
      start > 0 ? static_cast<double>(MonotonicNanos() - start) / 1e9
                : 0.0;
  return s;
}

std::string IngestSnapshot::Format() const {
  char buf[448];
  int n = std::snprintf(
      buf, sizeof(buf),
      "%llu msgs (%llu quanta) in %.2fs = %.0f msg/s | "
      "read %llu, shed %llu, malformed %llu | "
      "%.2f us/msg tokenize, peak queue %llu",
      static_cast<unsigned long long>(messages_emitted),
      static_cast<unsigned long long>(quanta_emitted), elapsed_seconds,
      MessagesPerSecond(), static_cast<unsigned long long>(records_read),
      static_cast<unsigned long long>(shed),
      static_cast<unsigned long long>(malformed),
      TokenizeMicrosPerMessage(),
      static_cast<unsigned long long>(peak_queue_depth));
  if (commits > 0 && n > 0 && static_cast<std::size_t>(n) < sizeof(buf)) {
    n += std::snprintf(buf + n, sizeof(buf) - static_cast<std::size_t>(n),
                       " | %llu commits, %.0f us/commit",
                       static_cast<unsigned long long>(commits),
                       CommitMicros());
  }
  if (checkpoints > 0 && n > 0 &&
      static_cast<std::size_t>(n) < sizeof(buf)) {
    n += std::snprintf(buf + n, sizeof(buf) - static_cast<std::size_t>(n),
                       " | %llu ckpts, %.1f ms/ckpt",
                       static_cast<unsigned long long>(checkpoints),
                       CheckpointMillis());
  }
  if ((checkpoint_failures > 0 || sync_failures > 0) && n > 0 &&
      static_cast<std::size_t>(n) < sizeof(buf)) {
    std::snprintf(buf + n, sizeof(buf) - static_cast<std::size_t>(n),
                  " | FAILURES: %llu commit, %llu sync",
                  static_cast<unsigned long long>(checkpoint_failures),
                  static_cast<unsigned long long>(sync_failures));
  }
  return buf;
}

std::string IngestSnapshot::FormatJson() const {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "{\"records_read\": %llu, \"malformed\": %llu, \"admitted\": %llu, "
      "\"shed\": %llu, \"messages_emitted\": %llu, \"quanta_emitted\": %llu, "
      "\"tokens\": %llu, \"keywords\": %llu, \"tokenize_ns\": %llu, "
      "\"peak_queue_depth\": %llu, \"checkpoints\": %llu, "
      "\"checkpoint_bytes\": %llu, \"checkpoint_ns\": %llu, "
      "\"commits\": %llu, \"commit_bytes\": %llu, \"commit_ns\": %llu, "
      "\"checkpoint_failures\": %llu, \"sync_failures\": %llu, "
      "\"recovery_seconds\": %.6f, \"elapsed_seconds\": %.6f, "
      "\"messages_per_second\": %.1f}",
      static_cast<unsigned long long>(records_read),
      static_cast<unsigned long long>(malformed),
      static_cast<unsigned long long>(admitted),
      static_cast<unsigned long long>(shed),
      static_cast<unsigned long long>(messages_emitted),
      static_cast<unsigned long long>(quanta_emitted),
      static_cast<unsigned long long>(tokens),
      static_cast<unsigned long long>(keywords),
      static_cast<unsigned long long>(tokenize_ns),
      static_cast<unsigned long long>(peak_queue_depth),
      static_cast<unsigned long long>(checkpoints),
      static_cast<unsigned long long>(checkpoint_bytes),
      static_cast<unsigned long long>(checkpoint_ns),
      static_cast<unsigned long long>(commits),
      static_cast<unsigned long long>(commit_bytes),
      static_cast<unsigned long long>(commit_ns),
      static_cast<unsigned long long>(checkpoint_failures),
      static_cast<unsigned long long>(sync_failures), recovery_seconds,
      elapsed_seconds, MessagesPerSecond());
  return buf;
}

}  // namespace scprt::ingest
