#include "ingest/metrics.h"

#include <cstdio>

namespace scprt::ingest {

IngestMetrics::IngestMetrics(obs::Registry* registry) {
  obs::Registry& r =
      registry != nullptr ? *registry : obs::Registry::Default();
  records_read_ = r.GetCounter("ingest.records_read");
  malformed_ = r.GetCounter("ingest.malformed");
  admitted_ = r.GetCounter("ingest.admitted");
  shed_ = r.GetCounter("ingest.shed");
  messages_emitted_ = r.GetCounter("ingest.messages_emitted");
  quanta_emitted_ = r.GetCounter("ingest.quanta_emitted");
  tokens_ = r.GetCounter("ingest.tokens");
  keywords_ = r.GetCounter("ingest.keywords");
  tokenize_ns_ = r.GetCounter("ingest.tokenize_ns");
  peak_queue_depth_ = r.GetCounter("ingest.peak_queue_depth");
  queue_depth_ = r.GetGauge("ingest.queue_depth");
  checkpoints_ = r.GetCounter("ingest.checkpoints");
  checkpoint_bytes_ = r.GetCounter("ingest.checkpoint_bytes");
  checkpoint_ns_ = r.GetCounter("ingest.checkpoint_ns");
  commits_ = r.GetCounter("ingest.commits");
  commit_bytes_ = r.GetCounter("ingest.commit_bytes");
  commit_ns_ = r.GetCounter("ingest.commit_ns");
  checkpoint_failures_ = r.GetCounter("ingest.checkpoint_failures");
  sync_failures_ = r.GetCounter("ingest.sync_failures");
}

void IngestMetrics::Reset() {
  records_read_->Store(0);
  malformed_->Store(0);
  admitted_->Store(0);
  shed_->Store(0);
  messages_emitted_->Store(0);
  quanta_emitted_->Store(0);
  tokens_->Store(0);
  keywords_->Store(0);
  tokenize_ns_->Store(0);
  peak_queue_depth_->Store(0);
  queue_depth_->Set(0.0);
  checkpoints_->Store(0);
  checkpoint_bytes_->Store(0);
  checkpoint_ns_->Store(0);
  commits_->Store(0);
  commit_bytes_->Store(0);
  commit_ns_->Store(0);
  checkpoint_failures_->Store(0);
  sync_failures_->Store(0);
  // recovery_ns_ deliberately survives: it is set by the resume that led
  // into the Run whose Reset this is.
  start_ns_.store(MonotonicNanos(), std::memory_order_relaxed);
}

IngestSnapshot IngestMetrics::Snapshot() const {
  IngestSnapshot s;
  s.records_read = records_read_->Value();
  s.malformed = malformed_->Value();
  s.admitted = admitted_->Value();
  s.shed = shed_->Value();
  s.messages_emitted = messages_emitted_->Value();
  s.quanta_emitted = quanta_emitted_->Value();
  s.tokens = tokens_->Value();
  s.keywords = keywords_->Value();
  s.tokenize_ns = tokenize_ns_->Value();
  s.peak_queue_depth = peak_queue_depth_->Value();
  s.queue_depth = static_cast<std::uint64_t>(queue_depth_->Value());
  s.checkpoints = checkpoints_->Value();
  s.checkpoint_bytes = checkpoint_bytes_->Value();
  s.checkpoint_ns = checkpoint_ns_->Value();
  s.commits = commits_->Value();
  s.commit_bytes = commit_bytes_->Value();
  s.commit_ns = commit_ns_->Value();
  s.checkpoint_failures = checkpoint_failures_->Value();
  s.sync_failures = sync_failures_->Value();
  s.recovery_seconds =
      static_cast<double>(recovery_ns_.load(std::memory_order_relaxed)) /
      1e9;
  const std::int64_t start = start_ns_.load(std::memory_order_relaxed);
  s.elapsed_seconds =
      start > 0 ? static_cast<double>(MonotonicNanos() - start) / 1e9
                : 0.0;
  s.uptime_seconds = obs::ProcessUptimeSeconds();
  s.process_start_unix = obs::ProcessStartUnixSeconds();
  return s;
}

std::string IngestSnapshot::Format() const {
  char buf[512];
  int n = std::snprintf(
      buf, sizeof(buf),
      "%llu msgs (%llu quanta) in %.2fs = %.0f msg/s | "
      "read %llu, shed %llu, malformed %llu | "
      "%.2f us/msg tokenize, queue %llu (peak %llu)",
      static_cast<unsigned long long>(messages_emitted),
      static_cast<unsigned long long>(quanta_emitted), elapsed_seconds,
      MessagesPerSecond(), static_cast<unsigned long long>(records_read),
      static_cast<unsigned long long>(shed),
      static_cast<unsigned long long>(malformed),
      TokenizeMicrosPerMessage(),
      static_cast<unsigned long long>(queue_depth),
      static_cast<unsigned long long>(peak_queue_depth));
  if (commits > 0 && n > 0 && static_cast<std::size_t>(n) < sizeof(buf)) {
    n += std::snprintf(buf + n, sizeof(buf) - static_cast<std::size_t>(n),
                       " | %llu commits, %.0f us/commit",
                       static_cast<unsigned long long>(commits),
                       CommitMicros());
  }
  if (checkpoints > 0 && n > 0 &&
      static_cast<std::size_t>(n) < sizeof(buf)) {
    n += std::snprintf(buf + n, sizeof(buf) - static_cast<std::size_t>(n),
                       " | %llu ckpts, %.1f ms/ckpt",
                       static_cast<unsigned long long>(checkpoints),
                       CheckpointMillis());
  }
  if ((checkpoint_failures > 0 || sync_failures > 0) && n > 0 &&
      static_cast<std::size_t>(n) < sizeof(buf)) {
    std::snprintf(buf + n, sizeof(buf) - static_cast<std::size_t>(n),
                  " | FAILURES: %llu commit, %llu sync",
                  static_cast<unsigned long long>(checkpoint_failures),
                  static_cast<unsigned long long>(sync_failures));
  }
  return buf;
}

std::string IngestSnapshot::FormatJson() const {
  char buf[1536];
  std::snprintf(
      buf, sizeof(buf),
      "{\"records_read\": %llu, \"malformed\": %llu, \"admitted\": %llu, "
      "\"shed\": %llu, \"messages_emitted\": %llu, \"quanta_emitted\": %llu, "
      "\"tokens\": %llu, \"keywords\": %llu, \"tokenize_ns\": %llu, "
      "\"peak_queue_depth\": %llu, \"queue_depth\": %llu, "
      "\"checkpoints\": %llu, "
      "\"checkpoint_bytes\": %llu, \"checkpoint_ns\": %llu, "
      "\"commits\": %llu, \"commit_bytes\": %llu, \"commit_ns\": %llu, "
      "\"checkpoint_failures\": %llu, \"sync_failures\": %llu, "
      "\"recovery_seconds\": %.6f, \"elapsed_seconds\": %.6f, "
      "\"uptime_seconds\": %.6f, \"process_start_unix\": %.6f, "
      "\"messages_per_second\": %.1f, "
      "\"tokenize_micros_per_message\": %.3f, "
      "\"checkpoint_millis\": %.3f, \"commit_micros\": %.3f}",
      static_cast<unsigned long long>(records_read),
      static_cast<unsigned long long>(malformed),
      static_cast<unsigned long long>(admitted),
      static_cast<unsigned long long>(shed),
      static_cast<unsigned long long>(messages_emitted),
      static_cast<unsigned long long>(quanta_emitted),
      static_cast<unsigned long long>(tokens),
      static_cast<unsigned long long>(keywords),
      static_cast<unsigned long long>(tokenize_ns),
      static_cast<unsigned long long>(peak_queue_depth),
      static_cast<unsigned long long>(queue_depth),
      static_cast<unsigned long long>(checkpoints),
      static_cast<unsigned long long>(checkpoint_bytes),
      static_cast<unsigned long long>(checkpoint_ns),
      static_cast<unsigned long long>(commits),
      static_cast<unsigned long long>(commit_bytes),
      static_cast<unsigned long long>(commit_ns),
      static_cast<unsigned long long>(checkpoint_failures),
      static_cast<unsigned long long>(sync_failures), recovery_seconds,
      elapsed_seconds, uptime_seconds, process_start_unix,
      MessagesPerSecond(), TokenizeMicrosPerMessage(), CheckpointMillis(),
      CommitMicros());
  return buf;
}

}  // namespace scprt::ingest
