// The streaming ingestion pipeline: raw records in, detector-ready
// messages out, tokenization parallel, results deterministic.
//
//   MessageSource ──> [driver: admission + dispatch] ──> per-worker SPSC
//   in-queues ──> tokenizer workers (tokenize, stop-word filter, synonym
//   fold, dictionary lookup) ──> per-worker SPSC out-queues ──> [driver:
//   in-order collect + intern + dedup] ──> MessageSink (QuantumAssembler
//   -> EventDetector / ParallelDetector)
//
// One driver thread (the caller of Run) owns both ends: it dispatches
// record i to worker i mod W and collects finished records in the same
// round-robin order, so messages reach the sink in exact stream order no
// matter how workers interleave. Workers only *look up* keywords; records
// whose words are not yet interned carry the spelling through, and the
// driver interns them at collect time — in stream order. Keyword ids are
// therefore a pure function of the admitted stream, and the emitted
// messages (hence every downstream report) are bit-identical at any worker
// count (tests/ingest_pipeline_test.cc proves it, and proves equality with
// the pre-tokenized trace path).
//
// All queues are bounded, which is the backpressure: when tokenizers fall
// behind, the driver's dispatch stalls and the AdmissionController decides
// whether the arriving record waits (kBlock), is dropped (kDropTail), or
// is dropped unless its author survives seeded per-user sampling
// (kFairSample) — see ingest/admission.h.

#ifndef SCPRT_INGEST_PIPELINE_H_
#define SCPRT_INGEST_PIPELINE_H_

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/types.h"
#include "ingest/admission.h"
#include "ingest/assembler.h"
#include "ingest/metrics.h"
#include "ingest/source.h"
#include "text/concurrent_dictionary.h"
#include "text/synonyms.h"
#include "text/tokenizer.h"

namespace scprt::ingest {

/// Frontend tuning.
struct IngestConfig {
  /// Tokenizer workers. 0 derives hardware concurrency; 1 still overlaps
  /// tokenization with source reads and detection.
  std::size_t workers = 0;
  /// Per-worker staging-queue capacity (records), a power of two >= 2.
  /// Total staging = 2 * workers * queue_capacity (in + out sides).
  std::size_t queue_capacity = 1024;
  AdmissionConfig admission;
  text::TokenizerOptions tokenizer;
  /// Drop stop words after tokenization (paper Section 1.1).
  bool drop_stopwords = true;
  /// Optional synonym folding before interning (borrowed; may be null).
  const text::SynonymTable* synonyms = nullptr;
};

/// One token after the worker stage: a resolved id, or — when the word has
/// not been interned yet — its spelling, for the driver to intern in
/// stream order.
struct ResolvedToken {
  KeywordId id = kInvalidKeyword;
  std::string spelling;
};

/// The worker-stage transform, exposed for unit tests and frontend-only
/// micro-benchmarks: tokenize, filter stop words, fold synonyms, look up.
/// `raw_tokens` (optional) receives the pre-filter token count.
std::vector<ResolvedToken> TokenizeAndResolve(
    std::string_view message_text, const IngestConfig& config,
    const text::ConcurrentKeywordDictionary& dictionary,
    std::uint64_t* raw_tokens = nullptr);

/// Per-Run tuning (checkpoint resume continues a prior run's stream).
struct RunOptions {
  /// Sequence number of the first collected message — a resumed run
  /// continues the pre-crash numbering so replayed quanta are bit-identical
  /// to the uninterrupted stream's.
  std::uint64_t first_seq = 0;
  /// Starts the Run with every admission decision forced to kBlock
  /// semantics (cleared mid-run via set_suppress_shedding). Resume
  /// replays the tail between the checkpoint's source cursor and the
  /// crash point; re-deciding a shed-capable policy there could drop
  /// records the pre-crash run had admitted, so the resume runbook
  /// (docs/operations.md) replays losslessly and the durable session
  /// restores the configured policy at its first post-resume checkpoint.
  bool suppress_shedding = false;
};

/// The pipeline. Construct once, Run() to exhaustion (Run blocks and may
/// be called again with a new source; the dictionary keeps growing).
class IngestPipeline {
 public:
  /// `dictionary` is borrowed and must outlive the pipeline. Seed it (see
  /// ConcurrentKeywordDictionary::SeedFrom) to replay a known vocabulary,
  /// or start empty for a live stream.
  IngestPipeline(const IngestConfig& config,
                 text::ConcurrentKeywordDictionary* dictionary);
  ~IngestPipeline();

  IngestPipeline(const IngestPipeline&) = delete;
  IngestPipeline& operator=(const IngestPipeline&) = delete;

  /// Pumps `source` to exhaustion into `sink`, then calls sink.Finish().
  /// Blocks; the calling thread is the driver. Returns the final metrics
  /// snapshot of this run.
  IngestSnapshot Run(MessageSource& source, MessageSink& sink,
                     const RunOptions& options = {});

  /// Live counters (poll from any thread while Run is in flight).
  const IngestMetrics& metrics() const { return metrics_; }
  /// Writable counters (the durable session stamps checkpoint/recovery
  /// costs into the same snapshot the frontend counters land in).
  IngestMetrics& metrics() { return metrics_; }

  /// Source cursor of the last record delivered to the sink. Valid on the
  /// driver thread during Run (in particular inside sink callbacks — the
  /// checkpoint hook reads it there: at a quantum boundary it is exactly
  /// the cursor of the record that closed the quantum, because dispatch,
  /// collect and sink delivery all happen on the driver thread).
  const SourcePosition& last_collected_position() const {
    return last_collected_position_;
  }

  /// Flips the shedding override mid-run. Driver-thread only — callable
  /// from inside sink callbacks (the durable session ends its resume
  /// suppression window here once the first post-resume checkpoint lands).
  void set_suppress_shedding(bool suppress) {
    suppress_shedding_ = suppress;
  }

  /// Worker threads actually running.
  std::size_t workers() const;

  const IngestConfig& config() const { return config_; }

 private:
  struct Worker;

  void WorkerLoop(std::stop_token stop, Worker& worker);

  IngestConfig config_;
  text::ConcurrentKeywordDictionary* dictionary_;
  AdmissionController admission_;
  IngestMetrics metrics_;
  SourcePosition last_collected_position_;
  bool suppress_shedding_ = false;  // driver thread only
  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace scprt::ingest

#endif  // SCPRT_INGEST_PIPELINE_H_
