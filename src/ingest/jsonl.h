// Minimal JSON-lines record parsing for the raw-text ingest frontend.
//
// The ingest JSONL schema is one object per line:
//
//   {"user": 1234, "text": "earthquake hits eastern turkey", "event": 3}
//
//   * "user"  (required) — non-negative integer author id.
//   * "text"  (required) — the raw message text (JSON string escapes,
//               including \uXXXX, are decoded to UTF-8).
//   * "event" (optional) — planted ground-truth label for evaluation
//               harnesses; defaults to background (-1). The detector never
//               reads it.
//
// Unknown keys are skipped (values of any JSON type, including nested
// containers), so real-world dumps with extra fields ingest unchanged. The
// parser is hand-rolled: the container ships no JSON library, the schema is
// two fields deep, and a restricted parser is fuzz-friendlier than a
// general one.

#ifndef SCPRT_INGEST_JSONL_H_
#define SCPRT_INGEST_JSONL_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace scprt::ingest {

/// One decoded JSONL record.
struct JsonlRecord {
  std::uint32_t user = 0;
  std::int32_t event_id = -1;
  std::string text;
};

/// Parses one line. Returns false on malformed input (bad JSON, missing
/// "user"/"text", negative or overflowing user id); `out` is then
/// unspecified. Blank lines are malformed — callers skip them beforehand.
bool ParseJsonlRecord(std::string_view line, JsonlRecord& out);

/// Appends `text` to `out` as a JSON string literal (quotes included),
/// escaping per RFC 8259. Bytes >= 0x80 pass through (UTF-8 stays UTF-8).
void AppendJsonString(std::string_view text, std::string& out);

}  // namespace scprt::ingest

#endif  // SCPRT_INGEST_JSONL_H_
