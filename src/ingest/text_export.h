// Rendering pre-tokenized traces back to raw text (JSONL / TSV).
//
// The inverse of the ingest frontend for tokenizer-stable vocabularies:
// spellings that are already lower-case, stop-word-free and tokenizable
// round-trip exactly (render -> tokenize gives back the same token
// sequence), which is what lets the equivalence tests and the raw-text
// demo drive the full pipeline from a synthetic trace.

#ifndef SCPRT_INGEST_TEXT_EXPORT_H_
#define SCPRT_INGEST_TEXT_EXPORT_H_

#include <iosfwd>
#include <string>

#include "stream/message.h"
#include "stream/synthetic.h"
#include "text/keyword_dictionary.h"

namespace scprt::ingest {

/// Space-joined spellings of `message`'s keywords, in keyword order.
std::string RenderMessageText(const stream::Message& message,
                              const text::KeywordDictionary& dictionary);

/// One JSONL line for `message` (no trailing newline). Includes the
/// "event" field only for planted messages.
std::string RenderJsonlLine(const stream::Message& message,
                            const text::KeywordDictionary& dictionary);

/// One TSV line for `message` (no trailing newline): `user<TAB>text`, or
/// `user<TAB>event<TAB>text` for planted messages.
std::string RenderTsvLine(const stream::Message& message,
                          const text::KeywordDictionary& dictionary);

/// Writes the whole trace as JSONL / TSV. Returns false on stream failure.
bool WriteJsonl(const stream::SyntheticTrace& trace, std::ostream& out);
bool WriteTsv(const stream::SyntheticTrace& trace, std::ostream& out);

/// File variants.
bool WriteJsonlFile(const stream::SyntheticTrace& trace,
                    const std::string& path);
bool WriteTsvFile(const stream::SyntheticTrace& trace,
                  const std::string& path);

}  // namespace scprt::ingest

#endif  // SCPRT_INGEST_TEXT_EXPORT_H_
