#include "ingest/durable.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <utility>

#include "common/check.h"
#include "common/logging.h"

namespace scprt::ingest {

namespace fs = std::filesystem;
namespace sio = detect::snapshot_io;

namespace {

// One checkpoint file found in the directory.
struct CheckpointFile {
  std::uint64_t ordinal = 0;
  bool full = false;
  fs::path path;
};

// Parses "full-NNNNNN.ckpt" / "delta-NNNNNN.ckpt"; false for other names
// (the scanner ignores foreign files rather than tripping on them). The
// match must cover the whole name: a leftover "….ckpt.tmp" from a write
// that crashed before its rename is an uncommitted artifact, not a
// checkpoint — treating it as one would defeat the tmp+rename protocol.
bool ParseCheckpointName(const std::string& name, CheckpointFile& out) {
  unsigned long long ordinal = 0;
  int consumed = 0;
  if (std::sscanf(name.c_str(), "full-%llu.ckpt%n", &ordinal, &consumed) ==
          1 &&
      consumed == static_cast<int>(name.size())) {
    out.ordinal = ordinal;
    out.full = true;
    return true;
  }
  consumed = 0;
  if (std::sscanf(name.c_str(), "delta-%llu.ckpt%n", &ordinal,
                  &consumed) == 1 &&
      consumed == static_cast<int>(name.size())) {
    out.ordinal = ordinal;
    out.full = false;
    return true;
  }
  return false;
}

std::string CheckpointFileName(std::uint64_t ordinal, bool full) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%s-%06" PRIu64 ".ckpt",
                full ? "full" : "delta", ordinal);
  return buf;
}

std::vector<CheckpointFile> ScanDirectory(const std::string& directory) {
  std::vector<CheckpointFile> files;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(directory, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    CheckpointFile file;
    if (!ParseCheckpointName(entry.path().filename().string(), file)) {
      continue;
    }
    file.path = entry.path();
    files.push_back(std::move(file));
  }
  std::sort(files.begin(), files.end(),
            [](const CheckpointFile& a, const CheckpointFile& b) {
              return a.ordinal > b.ordinal;  // newest first
            });
  return files;
}

}  // namespace

DurableIngest::DurableIngest(const IngestConfig& ingest,
                             const engine::ParallelDetectorConfig& engine,
                             const DurableConfig& durable)
    : ingest_config_(ingest), engine_config_(engine), durable_(durable) {
  SCPRT_CHECK(!durable.directory.empty());
  SCPRT_CHECK(durable.full_interval >= 1);
  // At least one cadence trigger must be live: with both off, no
  // checkpoint is ever due while the delta log still records every
  // quantum — unbounded memory and zero durability.
  SCPRT_CHECK(durable.checkpoint_quanta > 0 ||
              durable.checkpoint_seconds > 0.0);
  std::error_code ec;
  fs::create_directories(durable.directory, ec);
  // Continue the ordinal sequence above any files already in the
  // directory, resumed or not: a fresh session restarting at 0 would let
  // a later --resume pick a stale higher-ordinal checkpoint from an
  // abandoned deployment over this one's.
  const std::vector<CheckpointFile> existing =
      ScanDirectory(durable.directory);
  if (!existing.empty()) ordinal_ = existing.front().ordinal + 1;
  engine_ = std::make_unique<engine::ParallelDetector>(engine_config_,
                                                       &dictionary_.view());
}

DurableIngest::~DurableIngest() = default;

ResumeResult DurableIngest::Resume() {
  SCPRT_CHECK(pipeline_ == nullptr);  // before the first Run
  ResumeResult result;
  const std::int64_t t0 = MonotonicNanos();
  const std::vector<CheckpointFile> files = ScanDirectory(durable_.directory);
  if (files.empty()) return result;  // fresh start

  for (const CheckpointFile& full : files) {
    if (!full.full) continue;
    sio::LoadError error = sio::LoadError::kNone;
    sio::IngestState full_state;
    bool full_has_ingest = false;
    std::uint64_t base_id = 0;
    std::ifstream in(full.path, std::ios::binary);
    auto engine = engine::ParallelDetector::LoadCheckpoint(
        in, &dictionary_.view(), engine_config_.threads, &base_id, &error,
        &full_state, &full_has_ingest);
    if (engine == nullptr || !full_has_ingest ||
        full_state.dictionary_base != 0) {
      if (engine != nullptr) error = sio::LoadError::kCorrupt;
      if (result.error == sio::LoadError::kNone) result.error = error;
      result.detail += full.path.filename().string() + ": " +
                       sio::LoadErrorName(error) +
                       (engine != nullptr ? " (bad ingest section)" : "") +
                       "; ";
      continue;
    }
    // Install the full snapshot's dictionary before any replay touches
    // its keyword ids.
    BinaryReader full_dictionary(full_state.dictionary_state);
    if (!dictionary_.RestoreState(full_dictionary)) {
      if (result.error == sio::LoadError::kNone) {
        result.error = sio::LoadError::kCorrupt;
      }
      result.detail +=
          full.path.filename().string() + ": dictionary blob malformed; ";
      continue;  // dictionary_ is unchanged (still empty) — try older fulls
    }
    // This generation is committed from here on. The snapshot's detector
    // configuration is authoritative: the engine was restored with it,
    // and resuming against a different δ would either break the pending
    // partial quantum or silently cut different-sized quanta against
    // state built at the old size.
    engine_config_.detector = engine->core().config();

    // The newest delta chaining to this base supersedes it: its
    // IngestState (dictionary tail, cursor, counters) describes the later
    // fence point.
    sio::IngestState state = full_state;
    sio::DeltaPayload delta;
    bool have_delta = false;
    for (const CheckpointFile& candidate : files) {
      if (candidate.full || candidate.ordinal <= full.ordinal) continue;
      sio::IngestState delta_state;
      bool delta_has_ingest = false;
      sio::LoadError delta_error = sio::LoadError::kNone;
      std::ifstream delta_in(candidate.path, std::ios::binary);
      const bool valid = sio::ReadAndValidateDelta(
          delta_in, base_id, engine->next_quantum_index(),
          engine_config_.detector.quantum_size, delta, &delta_error,
          &delta_state, &delta_has_ingest);
      if (valid && delta_has_ingest) {
        // Deltas carry only the dictionary tail interned since the base;
        // append it. A mismatched base size degrades to full-only resume.
        BinaryReader tail(delta_state.dictionary_state);
        if (!dictionary_.RestoreState(
                tail,
                static_cast<KeywordId>(delta_state.dictionary_base))) {
          if (result.error == sio::LoadError::kNone) {
            result.error = sio::LoadError::kCorrupt;
          }
          result.detail += candidate.path.filename().string() +
                           ": dictionary tail malformed; ";
          break;
        }
        state = std::move(delta_state);
        have_delta = true;
        result.delta_path = candidate.path.string();
        break;
      }
      if (valid) {
        // A well-formed delta from the non-durable engine path: nothing
        // corrupt, just not resumable for ingest.
        result.detail +=
            candidate.path.filename().string() + ": no ingest section; ";
        continue;
      }
      if (result.error == sio::LoadError::kNone) {
        result.error = delta_error;
      }
      result.detail += candidate.path.filename().string() + ": " +
                       sio::LoadErrorName(delta_error) + "; ";
    }

    if (have_delta) {
      replayed_quanta_ = delta.quanta.size();
      engine->ApplyValidatedDelta(delta);
    }

    engine_ = std::move(engine);
    full_dictionary_size_ = state.dictionary_base == 0
                                ? dictionary_.size()
                                : static_cast<std::size_t>(
                                      state.dictionary_base);
    resume_pending_messages_ = engine_->TakePendingMessages();
    resume_next_quantum_ = engine_->next_quantum_index();
    resume_cursor_ =
        SourcePosition{state.cursor_record, state.cursor_byte};
    next_seq_ = state.next_seq;
    quanta_cut_total_ = state.quanta_cut;
    records_read_base_ = state.records_read;
    shed_base_ = state.shed;
    // Restore the admission seeds so the kFairSample survivor set is the
    // same function of user ids it was before the crash.
    ingest_config_.admission.policy =
        static_cast<OverloadPolicy>(state.admission_policy);
    ingest_config_.admission.seed = state.admission_seed;
    ingest_config_.admission.sample_keep_fraction =
        state.sample_keep_fraction;
    resume_pending_ = true;

    result.outcome = ResumeResult::Outcome::kResumed;
    result.full_path = full.path.string();
    result.next_seq = next_seq_;
    result.next_quantum = resume_next_quantum_;
    result.cursor = resume_cursor_;
    resume_ns_ = static_cast<std::uint64_t>(MonotonicNanos() - t0);
    return result;
  }

  // Checkpoint files exist but nothing was recoverable.
  result.outcome = ResumeResult::Outcome::kFailed;
  if (result.error == sio::LoadError::kNone) {
    result.error = sio::LoadError::kCorrupt;
  }
  return result;
}

std::optional<IngestSnapshot> DurableIngest::Run(
    MessageSource& source, QuantumAssembler::ReportFn on_report,
    bool flush_partial) {
  if (resume_pending_ && !resume_consumed_) {
    const std::int64_t t0 = MonotonicNanos();
    if (!source.Seek(resume_cursor_)) {
      SCPRT_LOG(kWarning) << "resume cursor seek failed (record "
                        << resume_cursor_.record_index << ", byte "
                        << resume_cursor_.byte_offset
                        << ") — source cannot replay its tail";
      return std::nullopt;
    }
    resume_ns_ += static_cast<std::uint64_t>(MonotonicNanos() - t0);
  }
  if (pipeline_ == nullptr) {
    pipeline_ =
        std::make_unique<IngestPipeline>(ingest_config_, &dictionary_);
    pipeline_->metrics().SetRecoveryNs(resume_ns_);
  }

  QuantumAssembler assembler(
      engine_config_.detector.quantum_size,
      [this](const stream::Quantum& quantum) {
        return ProcessQuantum(quantum);
      },
      std::move(on_report), flush_partial);
  // Reports flow through the callback; a durable session is long-running,
  // so never accumulate them.
  assembler.set_keep_reports(false);
  SCPRT_CHECK(assembler.Restore(resume_next_quantum_,
                                std::move(resume_pending_messages_),
                                quanta_cut_total_));
  resume_pending_messages_.clear();

  RunOptions options;
  options.first_seq = next_seq_;
  options.suppress_shedding = resume_pending_ && !resume_consumed_ &&
                              durable_.suppress_shedding_on_resume;
  suppression_active_ = options.suppress_shedding;
  resume_consumed_ = true;

  active_assembler_ = &assembler;
  last_checkpoint_ns_ = MonotonicNanos();
  IngestSnapshot snapshot = pipeline_->Run(source, assembler, options);
  active_assembler_ = nullptr;

  // Carry the stream coordinates into a possible next Run: the clock,
  // (when this run did not flush) the still-pending partial quantum, and
  // the lifetime counters — pipeline metrics reset per Run, so each
  // run's contribution folds into the bases the checkpoints persist.
  next_seq_ += snapshot.messages_emitted;
  resume_next_quantum_ = assembler.quantizer().next_index();
  resume_pending_messages_ = assembler.TakePending();
  records_read_base_ += snapshot.records_read;
  shed_base_ += snapshot.shed;
  return snapshot;
}

detect::QuantumReport DurableIngest::ProcessQuantum(
    const stream::Quantum& quantum) {
  detect::QuantumReport report = engine_->ProcessQuantum(quantum);
  manager_.Record(quantum);
  ++quanta_cut_total_;
  ++quanta_since_checkpoint_;

  const bool count_due = durable_.checkpoint_quanta > 0 &&
                         quanta_since_checkpoint_ >=
                             durable_.checkpoint_quanta;
  const bool time_due =
      durable_.checkpoint_seconds > 0.0 &&
      static_cast<double>(MonotonicNanos() - last_checkpoint_ns_) / 1e9 >=
          durable_.checkpoint_seconds;
  if (count_due || time_due) WriteCheckpoint(quantum);
  return report;
}

void DurableIngest::WriteCheckpoint(const stream::Quantum& quantum) {
  const std::int64_t t0 = MonotonicNanos();
  const bool full =
      !have_full_ || checkpoints_since_full_ >= durable_.full_interval - 1;

  sio::IngestState state;
  // A full snapshot carries the whole dictionary; a delta only the tail
  // interned since its base full (ids are append-only, so the base's
  // prefix is immutable) — keeping deltas O(delta), not O(vocabulary).
  const std::size_t dictionary_size = dictionary_.size();
  state.dictionary_base =
      full ? 0 : static_cast<std::uint64_t>(full_dictionary_size_);
  BinaryWriter dictionary_blob;
  dictionary_.SaveState(dictionary_blob,
                        static_cast<KeywordId>(state.dictionary_base));
  state.dictionary_state = dictionary_blob.TakeData();
  state.admission_policy =
      static_cast<std::uint8_t>(ingest_config_.admission.policy);
  state.admission_seed = ingest_config_.admission.seed;
  state.sample_keep_fraction = ingest_config_.admission.sample_keep_fraction;
  // The record that closed this quantum is the last one the driver
  // collected, so the pipeline's cursor is exactly the fence point.
  const SourcePosition cursor = pipeline_->last_collected_position();
  state.cursor_record = cursor.record_index;
  state.cursor_byte = cursor.byte_offset;
  state.next_seq = quantum.messages.back().seq + 1;
  state.quanta_cut = quanta_cut_total_;
  const IngestSnapshot live = pipeline_->metrics().Snapshot();
  state.records_read = records_read_base_ + live.records_read;
  state.shed = shed_base_ + live.shed;

  detect::CheckpointExtras extras;
  extras.quantizer_override = &active_assembler_->quantizer();
  extras.ingest = &state;

  const fs::path path =
      fs::path(durable_.directory) / CheckpointFileName(ordinal_, full);
  const fs::path tmp = path.string() + ".tmp";
  bool ok = false;
  std::uint64_t checkpoint_id = 0;
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (out) {
      ok = full ? engine_->SaveCheckpoint(out, &checkpoint_id, extras)
                : engine_->SaveDeltaCheckpoint(manager_.base_id(),
                                               manager_.log(), out, extras);
      out.flush();
      ok = ok && static_cast<bool>(out);
    }
  }
  std::error_code ec;
  if (ok) {
    fs::rename(tmp, path, ec);
    ok = !ec;
  }
  if (!ok) {
    ++checkpoint_failures_;
    fs::remove(tmp, ec);
    SCPRT_LOG(kWarning) << "checkpoint write failed: " << path.string()
                      << " — recovery point ages until the next attempt";
    return;  // delta log kept; retried at the next due boundary
  }

  if (full) {
    manager_.OnFullSaved(checkpoint_id);
    have_full_ = true;
    checkpoints_since_full_ = 0;
    full_dictionary_size_ = dictionary_size;
    // Keep one whole fallback generation: the previous full and every
    // delta after it survive until the *next* full supersedes them.
    CollectGarbage(prev_full_ordinal_);
    prev_full_ordinal_ = ordinal_;
  } else {
    ++checkpoints_since_full_;
  }
  ++ordinal_;
  quanta_since_checkpoint_ = 0;
  last_checkpoint_ns_ = MonotonicNanos();
  // Durability is re-established: end the post-resume lossless-replay
  // window and give the configured overload policy back its say.
  if (suppression_active_) {
    pipeline_->set_suppress_shedding(false);
    suppression_active_ = false;
  }

  const std::uint64_t bytes = fs::file_size(path, ec);
  pipeline_->metrics().AddCheckpoint(
      ec ? 0 : bytes, static_cast<std::uint64_t>(MonotonicNanos() - t0));
}

void DurableIngest::CollectGarbage(std::uint64_t keep_from_ordinal) {
  std::error_code ec;
  for (const CheckpointFile& file : ScanDirectory(durable_.directory)) {
    if (file.ordinal < keep_from_ordinal) fs::remove(file.path, ec);
  }
}

}  // namespace scprt::ingest
