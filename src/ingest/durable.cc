#include "ingest/durable.h"

#include <utility>

#include "common/check.h"
#include "common/logging.h"

namespace scprt::ingest {

namespace sio = detect::snapshot_io;

DurableIngest::DurableIngest(const IngestConfig& ingest,
                             const engine::ParallelDetectorConfig& engine,
                             const DurableConfig& durable)
    : ingest_config_(ingest), engine_config_(engine), durable_(durable) {
  SCPRT_CHECK(!durable.directory.empty());
  SCPRT_CHECK(durable.full_interval >= 1);
  // At least one cadence trigger must be live: with both off, the
  // snapshot backend never persists anything and the WAL backend never
  // cuts a segment — zero durability either way.
  SCPRT_CHECK(durable.checkpoint_quanta > 0 ||
              durable.checkpoint_seconds > 0.0);
  durability::BackendOptions options;
  options.directory = durable.directory;
  options.kind = durable.backend;
  options.fsync = durable.fsync;
  options.commit_quanta = durable.checkpoint_quanta;
  options.commit_seconds = durable.checkpoint_seconds;
  options.full_interval = durable.full_interval;
  backend_ = durability::MakeBackend(options);
  engine_ = std::make_unique<engine::ParallelDetector>(engine_config_,
                                                       &dictionary_.view());
}

DurableIngest::~DurableIngest() = default;

ResumeResult DurableIngest::Resume() {
  SCPRT_CHECK(pipeline_ == nullptr);  // before the first Run
  ResumeResult result;
  const std::int64_t t0 = MonotonicNanos();

  durability::RecoverOptions options;
  options.engine_threads = engine_config_.threads;
  options.dictionary = &dictionary_;
  durability::RecoverResult recovered = backend_->Recover(options);
  result.error = std::move(recovered.error);
  result.detail = std::move(recovered.detail);
  switch (recovered.outcome) {
    case durability::RecoverResult::Outcome::kFresh:
      return result;
    case durability::RecoverResult::Outcome::kFailed:
      result.outcome = ResumeResult::Outcome::kFailed;
      return result;
    case durability::RecoverResult::Outcome::kRecovered:
      break;
  }

  engine_ = std::move(recovered.engine);
  // The recovered detector configuration is authoritative: the engine was
  // restored with it, and resuming against a different δ would either
  // break the pending partial quantum or silently cut different-sized
  // quanta against state built at the old size.
  engine_config_.detector = engine_->core().config();
  replayed_quanta_ = recovered.replayed_quanta;

  const sio::IngestState& state = recovered.state;
  resume_pending_messages_ = engine_->TakePendingMessages();
  resume_next_quantum_ = engine_->next_quantum_index();
  resume_cursor_ = SourcePosition{state.cursor_record, state.cursor_byte};
  next_seq_ = state.next_seq;
  quanta_cut_total_ = state.quanta_cut;
  records_read_base_ = state.records_read;
  shed_base_ = state.shed;
  // Restore the admission seeds so the kFairSample survivor set is the
  // same function of user ids it was before the crash.
  ingest_config_.admission.policy =
      static_cast<OverloadPolicy>(state.admission_policy);
  ingest_config_.admission.seed = state.admission_seed;
  ingest_config_.admission.sample_keep_fraction =
      state.sample_keep_fraction;
  resume_pending_ = true;

  result.outcome = ResumeResult::Outcome::kResumed;
  result.full_path = std::move(recovered.base_path);
  result.delta_path = std::move(recovered.tail_path);
  result.next_seq = next_seq_;
  result.next_quantum = resume_next_quantum_;
  result.cursor = resume_cursor_;
  resume_ns_ = static_cast<std::uint64_t>(MonotonicNanos() - t0);
  return result;
}

std::optional<IngestSnapshot> DurableIngest::Run(
    MessageSource& source, QuantumAssembler::ReportFn on_report,
    bool flush_partial) {
  if (resume_pending_ && !resume_consumed_) {
    const std::int64_t t0 = MonotonicNanos();
    if (!source.Seek(resume_cursor_)) {
      SCPRT_LOG(kWarning) << "resume cursor seek failed (record "
                        << resume_cursor_.record_index << ", byte "
                        << resume_cursor_.byte_offset
                        << ") — source cannot replay its tail";
      return std::nullopt;
    }
    resume_ns_ += static_cast<std::uint64_t>(MonotonicNanos() - t0);
  }
  if (pipeline_ == nullptr) {
    pipeline_ =
        std::make_unique<IngestPipeline>(ingest_config_, &dictionary_);
    pipeline_->metrics().SetRecoveryNs(resume_ns_);
  }

  QuantumAssembler assembler(
      engine_config_.detector.quantum_size,
      [this](const stream::Quantum& quantum) {
        return ProcessQuantum(quantum);
      },
      std::move(on_report), flush_partial);
  // Reports flow through the callback; a durable session is long-running,
  // so never accumulate them.
  assembler.set_keep_reports(false);
  SCPRT_CHECK(assembler.Restore(resume_next_quantum_,
                                std::move(resume_pending_messages_),
                                quanta_cut_total_));
  resume_pending_messages_.clear();

  RunOptions options;
  options.first_seq = next_seq_;
  options.suppress_shedding = resume_pending_ && !resume_consumed_ &&
                              durable_.suppress_shedding_on_resume;
  suppression_active_ = options.suppress_shedding;
  resume_consumed_ = true;

  active_assembler_ = &assembler;
  IngestSnapshot snapshot = pipeline_->Run(source, assembler, options);
  active_assembler_ = nullptr;

  // Carry the stream coordinates into a possible next Run: the clock,
  // (when this run did not flush) the still-pending partial quantum, and
  // the lifetime counters — pipeline metrics reset per Run, so each
  // run's contribution folds into the bases the commits persist.
  next_seq_ += snapshot.messages_emitted;
  resume_next_quantum_ = assembler.quantizer().next_index();
  resume_pending_messages_ = assembler.TakePending();
  records_read_base_ += snapshot.records_read;
  shed_base_ += snapshot.shed;
  return snapshot;
}

detect::QuantumReport DurableIngest::ProcessQuantum(
    const stream::Quantum& quantum) {
  detect::QuantumReport report = engine_->ProcessQuantum(quantum);
  ++quanta_cut_total_;

  // Hand the boundary to the backend with the frontend state at this
  // fence; the backend decides whether (and what) it persists.
  durability::CommitContext ctx;
  ctx.quantum = &quantum;
  ctx.quantizer = &active_assembler_->quantizer();
  ctx.dictionary = &dictionary_;
  sio::IngestState& state = ctx.state;
  state.admission_policy =
      static_cast<std::uint8_t>(ingest_config_.admission.policy);
  state.admission_seed = ingest_config_.admission.seed;
  state.sample_keep_fraction = ingest_config_.admission.sample_keep_fraction;
  // The record that closed this quantum is the last one the driver
  // collected, so the pipeline's cursor is exactly the fence point.
  const SourcePosition cursor = pipeline_->last_collected_position();
  state.cursor_record = cursor.record_index;
  state.cursor_byte = cursor.byte_offset;
  state.next_seq = quantum.messages.back().seq + 1;
  state.quanta_cut = quanta_cut_total_;
  const IngestSnapshot live = pipeline_->metrics().Snapshot();
  state.records_read = records_read_base_ + live.records_read;
  state.shed = shed_base_ + live.shed;

  durability::CommitResult commit = backend_->Commit(*engine_, ctx);
  if (!commit.error.ok()) {
    ++checkpoint_failures_;
    last_error_ = commit.error;
    pipeline_->metrics().AddCheckpointFailure();
    SCPRT_LOG(kWarning) << "durable commit failed ("
                      << commit.error.ToString()
                      << ") — recovery point ages until the next attempt";
  }
  const std::uint64_t sync_failures = backend_->sync_failures();
  if (sync_failures > sync_failures_seen_) {
    pipeline_->metrics().AddSyncFailure(sync_failures -
                                        sync_failures_seen_);
    sync_failures_seen_ = sync_failures;
  }
  if (commit.persisted) {
    pipeline_->metrics().AddCommit(commit.bytes, commit.stall_ns);
    if (commit.checkpoint) {
      pipeline_->metrics().AddCheckpoint(commit.bytes, commit.stall_ns);
    }
    // Durability is re-established: end the post-resume lossless-replay
    // window and give the configured overload policy back its say.
    if (suppression_active_ && commit.error.ok()) {
      pipeline_->set_suppress_shedding(false);
      suppression_active_ = false;
    }
  }
  return report;
}

}  // namespace scprt::ingest
