#include "ingest/admission.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/hash.h"

namespace scprt::ingest {

AdmissionController::AdmissionController(const AdmissionConfig& config)
    : config_(config) {
  SCPRT_CHECK(config.sample_keep_fraction > 0.0 &&
              config.sample_keep_fraction <= 1.0);
  // Map the fraction onto the full 64-bit hash range. ldexp(f, 64) would
  // overflow uint64 for f == 1.0, so saturate explicitly.
  const double scaled = std::ldexp(config.sample_keep_fraction, 64);
  keep_threshold_ =
      scaled >= 18446744073709551615.0
          ? ~0ULL
          : static_cast<std::uint64_t>(scaled);
}

bool AdmissionController::InSample(UserId user) const {
  return SplitMix64(static_cast<std::uint64_t>(user) ^ config_.seed) <
         keep_threshold_;
}

Admission AdmissionController::Decide(UserId user, bool queue_full) const {
  if (!queue_full) return Admission::kAdmit;
  switch (config_.policy) {
    case OverloadPolicy::kBlock:
      return Admission::kRetry;
    case OverloadPolicy::kDropTail:
      return Admission::kShed;
    case OverloadPolicy::kFairSample:
      return InSample(user) ? Admission::kRetry : Admission::kShed;
  }
  return Admission::kRetry;  // unreachable
}

}  // namespace scprt::ingest
