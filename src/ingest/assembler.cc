#include "ingest/assembler.h"

#include <utility>

#include "common/check.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace scprt::ingest {

QuantumAssembler::QuantumAssembler(std::size_t quantum_size,
                                   ProcessFn process, ReportFn on_report,
                                   bool flush_partial)
    : quantizer_(quantum_size),
      process_(std::move(process)),
      on_report_(std::move(on_report)),
      flush_partial_(flush_partial) {
  SCPRT_CHECK(process_ != nullptr);
}

QuantumAssembler QuantumAssembler::For(detect::EventDetector& detector,
                                       ReportFn on_report,
                                       bool flush_partial) {
  return QuantumAssembler(
      detector.config().quantum_size,
      [&detector](const stream::Quantum& quantum) {
        return detector.ProcessQuantum(quantum);
      },
      std::move(on_report), flush_partial);
}

QuantumAssembler QuantumAssembler::For(engine::ParallelDetector& detector,
                                       ReportFn on_report,
                                       bool flush_partial) {
  return QuantumAssembler(
      detector.core().config().quantum_size,
      [&detector](const stream::Quantum& quantum) {
        return detector.ProcessQuantum(quantum);
      },
      std::move(on_report), flush_partial);
}

bool QuantumAssembler::Restore(QuantumIndex next_index,
                               std::vector<stream::Message> pending,
                               std::uint64_t quanta) {
  if (!quantizer_.Restore(next_index, std::move(pending))) return false;
  quanta_ = quanta;
  return true;
}

void QuantumAssembler::Push(stream::Message message) {
  SCPRT_CHECK(!finished_);
  if (auto quantum = quantizer_.Push(std::move(message))) {
    Process(*quantum);
  }
}

void QuantumAssembler::Finish() {
  if (finished_) return;
  finished_ = true;
  if (!flush_partial_) return;
  if (auto quantum = quantizer_.Flush()) {
    Process(*quantum);
  }
}

void QuantumAssembler::Process(const stream::Quantum& quantum) {
  // Top-level span of the trace hierarchy: everything the quantum costs
  // (detect, rank, commit) nests under this interval on the driver thread.
  static obs::Histogram* const quantum_hist =
      obs::Registry::Default().GetHistogram("ingest.quantum_process_ns");
  obs::ScopedSpan span("quantum");
  obs::ScopedHistogramTimer timer(quantum_hist);
  detect::QuantumReport report = process_(quantum);
  ++quanta_;
  if (metrics_) metrics_->AddQuantaEmitted(1);
  if (on_report_) on_report_(report);
  if (keep_reports_) reports_.push_back(std::move(report));
}

}  // namespace scprt::ingest
