#include "ingest/jsonl.h"

#include <cctype>
#include <cstdint>
#include <limits>

namespace scprt::ingest {

namespace {

// Cursor over one line. Parse helpers return false on malformed input and
// leave the cursor unspecified; the top-level parse then rejects the line.
struct Cursor {
  std::string_view s;
  std::size_t i = 0;

  bool AtEnd() const { return i >= s.size(); }
  char Peek() const { return s[i]; }
  bool Eat(char c) {
    if (AtEnd() || s[i] != c) return false;
    ++i;
    return true;
  }
  void SkipSpace() {
    while (!AtEnd() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\r' ||
                        s[i] == '\n')) {
      ++i;
    }
  }
};

// Appends one \uXXXX escape (with surrogate-pair handling) as UTF-8.
bool ParseUnicodeEscape(Cursor& c, std::string& out) {
  auto hex4 = [&](std::uint32_t& value) {
    value = 0;
    for (int k = 0; k < 4; ++k) {
      if (c.AtEnd()) return false;
      const char ch = c.s[c.i++];
      value <<= 4;
      if (ch >= '0' && ch <= '9') {
        value |= static_cast<std::uint32_t>(ch - '0');
      } else if (ch >= 'a' && ch <= 'f') {
        value |= static_cast<std::uint32_t>(ch - 'a' + 10);
      } else if (ch >= 'A' && ch <= 'F') {
        value |= static_cast<std::uint32_t>(ch - 'A' + 10);
      } else {
        return false;
      }
    }
    return true;
  };

  std::uint32_t cp = 0;
  if (!hex4(cp)) return false;
  if (cp >= 0xD800 && cp <= 0xDBFF) {
    // High surrogate: must be followed by \uDC00..\uDFFF.
    if (!c.Eat('\\') || !c.Eat('u')) return false;
    std::uint32_t low = 0;
    if (!hex4(low) || low < 0xDC00 || low > 0xDFFF) return false;
    cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
  } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
    return false;  // unpaired low surrogate
  }

  if (cp < 0x80) {
    out.push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
  return true;
}

// Parses a JSON string (cursor on the opening quote), decoding escapes.
bool ParseString(Cursor& c, std::string& out) {
  if (!c.Eat('"')) return false;
  out.clear();
  while (true) {
    if (c.AtEnd()) return false;
    const char ch = c.s[c.i++];
    if (ch == '"') return true;
    if (static_cast<unsigned char>(ch) < 0x20) return false;  // bare control
    if (ch != '\\') {
      out.push_back(ch);
      continue;
    }
    if (c.AtEnd()) return false;
    const char esc = c.s[c.i++];
    switch (esc) {
      case '"':
        out.push_back('"');
        break;
      case '\\':
        out.push_back('\\');
        break;
      case '/':
        out.push_back('/');
        break;
      case 'b':
        out.push_back('\b');
        break;
      case 'f':
        out.push_back('\f');
        break;
      case 'n':
        out.push_back('\n');
        break;
      case 'r':
        out.push_back('\r');
        break;
      case 't':
        out.push_back('\t');
        break;
      case 'u':
        if (!ParseUnicodeEscape(c, out)) return false;
        break;
      default:
        return false;
    }
  }
}

// Parses a JSON number into a signed 64-bit integer. Fractions and
// exponents are accepted syntactically but make the value non-integral,
// which the caller rejects for the fields it needs.
bool ParseNumber(Cursor& c, std::int64_t& value, bool& integral) {
  integral = true;
  bool negative = false;
  if (c.Eat('-')) negative = true;
  if (c.AtEnd() || !std::isdigit(static_cast<unsigned char>(c.Peek()))) {
    return false;
  }
  std::uint64_t magnitude = 0;
  while (!c.AtEnd() && std::isdigit(static_cast<unsigned char>(c.Peek()))) {
    const std::uint64_t digit = static_cast<std::uint64_t>(c.Peek() - '0');
    if (magnitude > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
      return false;  // overflow
    }
    magnitude = magnitude * 10 + digit;
    ++c.i;
  }
  if (c.Eat('.')) {
    integral = false;
    if (c.AtEnd() || !std::isdigit(static_cast<unsigned char>(c.Peek()))) {
      return false;
    }
    while (!c.AtEnd() && std::isdigit(static_cast<unsigned char>(c.Peek()))) {
      ++c.i;
    }
  }
  if (!c.AtEnd() && (c.Peek() == 'e' || c.Peek() == 'E')) {
    integral = false;
    ++c.i;
    if (!c.AtEnd() && (c.Peek() == '+' || c.Peek() == '-')) ++c.i;
    if (c.AtEnd() || !std::isdigit(static_cast<unsigned char>(c.Peek()))) {
      return false;
    }
    while (!c.AtEnd() && std::isdigit(static_cast<unsigned char>(c.Peek()))) {
      ++c.i;
    }
  }
  const std::uint64_t limit =
      static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max()) +
      (negative ? 1 : 0);
  if (magnitude > limit) return false;
  if (!negative || magnitude == 0) {
    value = static_cast<std::int64_t>(magnitude);
  } else {
    value = -static_cast<std::int64_t>(magnitude - 1) - 1;  // INT64_MIN-safe
  }
  return true;
}

// Skips a syntactically valid JSON number without range checks — unknown
// fields may carry 64-bit-overflowing ids that must not poison the record.
bool SkipNumber(Cursor& c) {
  c.Eat('-');
  if (c.AtEnd() || !std::isdigit(static_cast<unsigned char>(c.Peek()))) {
    return false;
  }
  while (!c.AtEnd() && std::isdigit(static_cast<unsigned char>(c.Peek()))) {
    ++c.i;
  }
  if (c.Eat('.')) {
    if (c.AtEnd() || !std::isdigit(static_cast<unsigned char>(c.Peek()))) {
      return false;
    }
    while (!c.AtEnd() && std::isdigit(static_cast<unsigned char>(c.Peek()))) {
      ++c.i;
    }
  }
  if (!c.AtEnd() && (c.Peek() == 'e' || c.Peek() == 'E')) {
    ++c.i;
    if (!c.AtEnd() && (c.Peek() == '+' || c.Peek() == '-')) ++c.i;
    if (c.AtEnd() || !std::isdigit(static_cast<unsigned char>(c.Peek()))) {
      return false;
    }
    while (!c.AtEnd() && std::isdigit(static_cast<unsigned char>(c.Peek()))) {
      ++c.i;
    }
  }
  return true;
}

bool EatLiteral(Cursor& c, std::string_view word) {
  if (c.s.size() - c.i < word.size()) return false;
  if (c.s.substr(c.i, word.size()) != word) return false;
  c.i += word.size();
  return true;
}

// Skips one JSON value of any type (for unknown keys).
bool SkipValue(Cursor& c, int depth) {
  if (depth > 16) return false;  // runaway nesting
  c.SkipSpace();
  if (c.AtEnd()) return false;
  const char ch = c.Peek();
  if (ch == '"') {
    std::string scratch;
    return ParseString(c, scratch);
  }
  if (ch == '{' || ch == '[') {
    const char close = ch == '{' ? '}' : ']';
    ++c.i;
    c.SkipSpace();
    if (c.Eat(close)) return true;
    while (true) {
      if (ch == '{') {
        c.SkipSpace();
        std::string key;
        if (!ParseString(c, key)) return false;
        c.SkipSpace();
        if (!c.Eat(':')) return false;
      }
      if (!SkipValue(c, depth + 1)) return false;
      c.SkipSpace();
      if (c.Eat(close)) return true;
      if (!c.Eat(',')) return false;
    }
  }
  if (ch == 't') return EatLiteral(c, "true");
  if (ch == 'f') return EatLiteral(c, "false");
  if (ch == 'n') return EatLiteral(c, "null");
  return SkipNumber(c);
}

}  // namespace

bool ParseJsonlRecord(std::string_view line, JsonlRecord& out) {
  Cursor c{line};
  c.SkipSpace();
  if (!c.Eat('{')) return false;

  bool have_user = false;
  bool have_text = false;
  out.event_id = -1;

  c.SkipSpace();
  if (!c.Eat('}')) {
    std::string key;
    while (true) {
      c.SkipSpace();
      if (!ParseString(c, key)) return false;
      c.SkipSpace();
      if (!c.Eat(':')) return false;
      c.SkipSpace();
      if (key == "user" || key == "event") {
        std::int64_t value = 0;
        bool integral = false;
        if (!ParseNumber(c, value, integral) || !integral) return false;
        if (key == "user") {
          if (value < 0 ||
              value > std::numeric_limits<std::uint32_t>::max()) {
            return false;
          }
          out.user = static_cast<std::uint32_t>(value);
          have_user = true;
        } else {
          if (value < std::numeric_limits<std::int32_t>::min() ||
              value > std::numeric_limits<std::int32_t>::max()) {
            return false;
          }
          out.event_id = static_cast<std::int32_t>(value);
        }
      } else if (key == "text") {
        if (!ParseString(c, out.text)) return false;
        have_text = true;
      } else {
        if (!SkipValue(c, 0)) return false;
      }
      c.SkipSpace();
      if (c.Eat('}')) break;
      if (!c.Eat(',')) return false;
    }
  }
  c.SkipSpace();
  if (!c.AtEnd()) return false;  // trailing garbage after the object
  return have_user && have_text;
}

void AppendJsonString(std::string_view text, std::string& out) {
  out.push_back('"');
  for (char ch : text) {
    const unsigned char byte = static_cast<unsigned char>(ch);
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (byte < 0x20) {
          const char* hex = "0123456789abcdef";
          out += "\\u00";
          out.push_back(hex[byte >> 4]);
          out.push_back(hex[byte & 0xF]);
        } else {
          out.push_back(ch);
        }
    }
  }
  out.push_back('"');
}

}  // namespace scprt::ingest
