// Pluggable message sources for the ingest pipeline.
//
// A MessageSource pulls one RawRecord at a time. Raw-text sources (JSONL,
// TSV, the in-memory generator) emit text that the frontend workers
// tokenize; the trace source emits pre-tokenized keyword ids and bypasses
// tokenization entirely, which is how the equivalence tests compare the two
// paths over the same token stream.

#ifndef SCPRT_INGEST_SOURCE_H_
#define SCPRT_INGEST_SOURCE_H_

#include <cstdint>
#include <istream>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "stream/message.h"
#include "stream/synthetic.h"

namespace scprt::ingest {

/// One unit of input before tokenization.
struct RawRecord {
  UserId user = 0;
  /// Ground-truth passthrough for evaluation; the detector never reads it.
  std::int32_t event_id = stream::kBackground;
  /// Raw message text (raw-text sources; empty when pretokenized).
  std::string text;
  /// Interned keywords (pre-tokenized sources; empty otherwise).
  std::vector<KeywordId> keywords;
  /// True when `keywords` is authoritative and `text` is to be ignored.
  bool pretokenized = false;
};

/// A resumable cursor into a source: how far it has been consumed. The
/// checkpoint format persists this verbatim (snapshot_io::IngestState), so
/// a restarted deployment can Seek() back to the fence point and replay
/// only the tail.
struct SourcePosition {
  /// Records returned by Next() so far.
  std::uint64_t record_index = 0;
  /// Byte offset just past the last returned record's line (stream-backed
  /// sources); mirrors record_index for in-memory sources.
  std::uint64_t byte_offset = 0;
};

/// Pull interface over an input stream of records.
class MessageSource {
 public:
  virtual ~MessageSource() = default;

  /// Pulls the next record; false at end of stream. Malformed input is
  /// skipped (and counted), never returned.
  virtual bool Next(RawRecord& out) = 0;

  /// Input lines skipped as malformed so far.
  virtual std::uint64_t malformed_count() const { return 0; }

  /// Cursor after the last record returned by Next(). Default: a source
  /// that does not track positions (always the zero position).
  virtual SourcePosition Position() const { return {}; }

  /// True when Seek() can restore a previously captured Position() —
  /// false for one-shot streams (stdin, sockets), whose deployments
  /// checkpoint but cannot replay the tail (docs/operations.md).
  virtual bool seekable() const { return false; }

  /// Repositions the source so the next Next() returns the record that
  /// followed `position`'s capture. Returns false when unsupported or the
  /// underlying seek failed (the source is then unusable for resume).
  virtual bool Seek(const SourcePosition& position) {
    (void)position;
    return false;
  }
};

/// JSON-lines raw text: one {"user":N,"text":"...","event":N?} per line
/// (see ingest/jsonl.h for the schema). Blank lines are skipped silently;
/// malformed lines are skipped and counted.
class JsonlSource : public MessageSource {
 public:
  /// Reads from a stream owned by the caller (must outlive the source).
  explicit JsonlSource(std::istream& in) : in_(&in) {}
  /// Opens `path`; ok() reports whether the open succeeded.
  explicit JsonlSource(const std::string& path);

  bool ok() const { return in_ != nullptr; }
  bool Next(RawRecord& out) override;
  std::uint64_t malformed_count() const override { return malformed_; }
  SourcePosition Position() const override { return position_; }
  bool seekable() const override;
  bool Seek(const SourcePosition& position) override;

 private:
  std::unique_ptr<std::istream> owned_;
  std::istream* in_ = nullptr;
  std::string line_;
  std::uint64_t malformed_ = 0;
  SourcePosition position_;
};

/// Tab-separated raw text: `user<TAB>text` or `user<TAB>event<TAB>text`.
/// Lines starting with '#' and blank lines are skipped silently; malformed
/// lines (bad user id, missing text column) are skipped and counted.
class TsvSource : public MessageSource {
 public:
  explicit TsvSource(std::istream& in) : in_(&in) {}
  explicit TsvSource(const std::string& path);

  bool ok() const { return in_ != nullptr; }
  bool Next(RawRecord& out) override;
  std::uint64_t malformed_count() const override { return malformed_; }
  SourcePosition Position() const override { return position_; }
  bool seekable() const override;
  bool Seek(const SourcePosition& position) override;

 private:
  std::unique_ptr<std::istream> owned_;
  std::istream* in_ = nullptr;
  std::string line_;
  std::uint64_t malformed_ = 0;
  SourcePosition position_;
};

/// Pre-tokenized messages (a synthetic trace or a loaded trace file). The
/// messages are borrowed and must outlive the source.
class TraceSource : public MessageSource {
 public:
  explicit TraceSource(const std::vector<stream::Message>& messages)
      : messages_(&messages) {}

  bool Next(RawRecord& out) override;
  SourcePosition Position() const override { return {next_, next_}; }
  bool seekable() const override { return true; }
  bool Seek(const SourcePosition& position) override;

 private:
  const std::vector<stream::Message>* messages_;
  std::uint64_t next_ = 0;
};

/// Pass-through adapter that ends the stream once the inner source's
/// absolute record index reaches `limit` — bounded replays, and the
/// crash simulations of the kill/resume tests and demo (everything after
/// the limit behaves as if the process died there). Position/Seek
/// delegate to the inner source, and a Seek re-bases the consumed count
/// from the cursor, so resuming through the limiter replays the tail up
/// to the same absolute limit.
class LimitedSource : public MessageSource {
 public:
  /// `inner` is borrowed and must outlive this source; its position must
  /// be at the start (record index 0) or be re-based via Seek.
  LimitedSource(MessageSource& inner, std::uint64_t limit)
      : inner_(&inner), limit_(limit) {}

  bool Next(RawRecord& out) override {
    if (consumed_ >= limit_ || !inner_->Next(out)) return false;
    ++consumed_;
    return true;
  }
  std::uint64_t malformed_count() const override {
    return inner_->malformed_count();
  }
  SourcePosition Position() const override { return inner_->Position(); }
  bool seekable() const override { return inner_->seekable(); }
  bool Seek(const SourcePosition& position) override {
    if (!inner_->Seek(position)) return false;
    consumed_ = position.record_index;
    return true;
  }

 private:
  MessageSource* inner_;
  std::uint64_t limit_;
  std::uint64_t consumed_ = 0;  // inner absolute record index
};

/// In-memory raw-text firehose: generates a synthetic trace and renders
/// each message back to text through the trace's own dictionary, so the
/// pipeline faces genuine tokenize/intern work without any file I/O.
class GeneratorSource : public MessageSource {
 public:
  explicit GeneratorSource(const stream::SyntheticConfig& config);

  bool Next(RawRecord& out) override;
  SourcePosition Position() const override { return {next_, next_}; }
  bool seekable() const override { return true; }
  bool Seek(const SourcePosition& position) override;

  /// The generated ground truth (for evaluation and dictionary seeding).
  const stream::SyntheticTrace& trace() const { return trace_; }

 private:
  stream::SyntheticTrace trace_;
  std::uint64_t next_ = 0;
};

}  // namespace scprt::ingest

#endif  // SCPRT_INGEST_SOURCE_H_
