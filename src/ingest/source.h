// Pluggable message sources for the ingest pipeline.
//
// A MessageSource pulls one RawRecord at a time. Raw-text sources (JSONL,
// TSV, the in-memory generator) emit text that the frontend workers
// tokenize; the trace source emits pre-tokenized keyword ids and bypasses
// tokenization entirely, which is how the equivalence tests compare the two
// paths over the same token stream.

#ifndef SCPRT_INGEST_SOURCE_H_
#define SCPRT_INGEST_SOURCE_H_

#include <cstdint>
#include <istream>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "stream/message.h"
#include "stream/synthetic.h"

namespace scprt::ingest {

/// One unit of input before tokenization.
struct RawRecord {
  UserId user = 0;
  /// Ground-truth passthrough for evaluation; the detector never reads it.
  std::int32_t event_id = stream::kBackground;
  /// Raw message text (raw-text sources; empty when pretokenized).
  std::string text;
  /// Interned keywords (pre-tokenized sources; empty otherwise).
  std::vector<KeywordId> keywords;
  /// True when `keywords` is authoritative and `text` is to be ignored.
  bool pretokenized = false;
};

/// Pull interface over an input stream of records.
class MessageSource {
 public:
  virtual ~MessageSource() = default;

  /// Pulls the next record; false at end of stream. Malformed input is
  /// skipped (and counted), never returned.
  virtual bool Next(RawRecord& out) = 0;

  /// Input lines skipped as malformed so far.
  virtual std::uint64_t malformed_count() const { return 0; }
};

/// JSON-lines raw text: one {"user":N,"text":"...","event":N?} per line
/// (see ingest/jsonl.h for the schema). Blank lines are skipped silently;
/// malformed lines are skipped and counted.
class JsonlSource : public MessageSource {
 public:
  /// Reads from a stream owned by the caller (must outlive the source).
  explicit JsonlSource(std::istream& in) : in_(&in) {}
  /// Opens `path`; ok() reports whether the open succeeded.
  explicit JsonlSource(const std::string& path);

  bool ok() const { return in_ != nullptr; }
  bool Next(RawRecord& out) override;
  std::uint64_t malformed_count() const override { return malformed_; }

 private:
  std::unique_ptr<std::istream> owned_;
  std::istream* in_ = nullptr;
  std::string line_;
  std::uint64_t malformed_ = 0;
};

/// Tab-separated raw text: `user<TAB>text` or `user<TAB>event<TAB>text`.
/// Lines starting with '#' and blank lines are skipped silently; malformed
/// lines (bad user id, missing text column) are skipped and counted.
class TsvSource : public MessageSource {
 public:
  explicit TsvSource(std::istream& in) : in_(&in) {}
  explicit TsvSource(const std::string& path);

  bool ok() const { return in_ != nullptr; }
  bool Next(RawRecord& out) override;
  std::uint64_t malformed_count() const override { return malformed_; }

 private:
  std::unique_ptr<std::istream> owned_;
  std::istream* in_ = nullptr;
  std::string line_;
  std::uint64_t malformed_ = 0;
};

/// Pre-tokenized messages (a synthetic trace or a loaded trace file). The
/// messages are borrowed and must outlive the source.
class TraceSource : public MessageSource {
 public:
  explicit TraceSource(const std::vector<stream::Message>& messages)
      : messages_(&messages) {}

  bool Next(RawRecord& out) override;

 private:
  const std::vector<stream::Message>* messages_;
  std::size_t next_ = 0;
};

/// In-memory raw-text firehose: generates a synthetic trace and renders
/// each message back to text through the trace's own dictionary, so the
/// pipeline faces genuine tokenize/intern work without any file I/O.
class GeneratorSource : public MessageSource {
 public:
  explicit GeneratorSource(const stream::SyntheticConfig& config);

  bool Next(RawRecord& out) override;

  /// The generated ground truth (for evaluation and dictionary seeding).
  const stream::SyntheticTrace& trace() const { return trace_; }

 private:
  stream::SyntheticTrace trace_;
  std::size_t next_ = 0;
};

}  // namespace scprt::ingest

#endif  // SCPRT_INGEST_SOURCE_H_
