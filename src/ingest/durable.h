// Checkpoint-aware ingest: a raw-text deployment that survives crashes.
//
// DurableIngest wires detect::CheckpointManager into the IngestPipeline.
// While the pipeline runs, every cut quantum is recorded into the delta
// log, and on a configurable cadence — every K quanta and/or every T
// seconds, always at a quantum boundary — the session snapshots the whole
// deployment into a checkpoint directory:
//
//   * the detector's derived state (the native structural snapshot of
//     detect/checkpoint.h, cut under the engine's ShardPool::Quiesce
//     fence),
//   * the assembler's quantizer clock + pending partial quantum (the
//     outermost accumulation point of the ingest path),
//   * the IngestState trailing section: the live keyword dictionary, the
//     admission policy/seed, the source cursor of the record that closed
//     the quantum, and the stream counters (snapshot_io::IngestState).
//
// Checkpoints alternate full snapshots and deltas (full_interval), written
// atomically (temp file + rename) as full-NNNNNN.ckpt / delta-NNNNNN.ckpt;
// superseded generations are garbage-collected.
//
// Resume() restores the newest loadable full snapshot plus the newest
// delta chaining to it, re-installs the dictionary, admission seeds and
// stream counters, and Run() then Seek()s the source back to the saved
// cursor and replays only the tail since the checkpoint. Replayed records
// re-enter the normal tokenize/intern path with shedding suppressed
// (RunOptions::suppress_shedding), so the post-restore report stream is
// bit-identical to a never-restarted pipeline's at any worker and engine
// thread count — tests/ingest_checkpoint_test.cc proves it seeded and
// fresh-dictionary. Recovery cost is surfaced as a first-class metric
// (IngestSnapshot::recovery_seconds, checkpoint_* counters).

#ifndef SCPRT_INGEST_DURABLE_H_
#define SCPRT_INGEST_DURABLE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "detect/checkpoint.h"
#include "detect/snapshot_io.h"
#include "engine/parallel_detector.h"
#include "ingest/assembler.h"
#include "ingest/pipeline.h"
#include "ingest/source.h"
#include "text/concurrent_dictionary.h"

namespace scprt::ingest {

/// Checkpoint cadence and placement.
struct DurableConfig {
  /// Directory the checkpoint files live in (created if missing).
  std::string directory;
  /// Checkpoint every K cut quanta (0 disables the count trigger; at
  /// least one of the two triggers must stay enabled).
  std::size_t checkpoint_quanta = 8;
  /// Also checkpoint when T seconds passed since the last one, evaluated
  /// at quantum boundaries (0 disables the time trigger).
  double checkpoint_seconds = 0.0;
  /// Every Nth checkpoint is a full snapshot; the ones between are deltas
  /// chained to it (1 = every checkpoint is full).
  std::size_t full_interval = 4;
  /// Replay the post-checkpoint tail with shedding suppressed, reverting
  /// to the configured policy at the first successful post-resume
  /// checkpoint (see RunOptions::suppress_shedding and the resume
  /// runbook in docs/operations.md).
  bool suppress_shedding_on_resume = true;
};

/// What Resume() found.
struct ResumeResult {
  enum class Outcome {
    /// No usable checkpoint — the session starts from scratch.
    kFresh,
    /// State restored; Run() will seek the source and continue.
    kResumed,
    /// Checkpoints exist but none could be restored.
    kFailed,
  };
  Outcome outcome = Outcome::kFresh;
  /// Typed reason of the *newest* failing checkpoint when anything failed
  /// to load (also set when an older checkpoint rescued the resume).
  detect::snapshot_io::LoadError error =
      detect::snapshot_io::LoadError::kNone;
  /// Human-readable trail: which files loaded, which were skipped and why.
  std::string detail;
  /// Paths actually restored (empty when not resumed).
  std::string full_path;
  std::string delta_path;
  /// Stream coordinates the session will continue from.
  std::uint64_t next_seq = 0;
  QuantumIndex next_quantum = 0;
  SourcePosition cursor;
};

/// A checkpointing ingest session: owns the dictionary, the sharded
/// engine, the pipeline and the checkpoint schedule. Construct, optionally
/// Resume(), then Run() — possibly repeatedly (each Run continues the
/// stream where the previous one ended).
class DurableIngest {
 public:
  DurableIngest(const IngestConfig& ingest,
                const engine::ParallelDetectorConfig& engine,
                const DurableConfig& durable);
  ~DurableIngest();

  DurableIngest(const DurableIngest&) = delete;
  DurableIngest& operator=(const DurableIngest&) = delete;

  /// Restores the newest recoverable checkpoint generation from the
  /// directory. Call at most once, before the first Run(). A missing or
  /// empty directory is a fresh start, not an error.
  ResumeResult Resume();

  /// Pumps `source` through the pipeline into the engine, checkpointing on
  /// cadence. After a successful Resume() the source is first Seek()ed to
  /// the saved cursor; returns nullopt (nothing consumed) when that seek
  /// fails — an unseekable source cannot replay its tail. `on_report`
  /// (optional) observes every quantum report. `flush_partial` keeps the
  /// live end-of-stream semantics (report on the trailing partial
  /// quantum); pass false when this Run is a segment of a longer stream —
  /// the partial stays pending and the next Run (or the checkpoint +
  /// resume path) continues it.
  std::optional<IngestSnapshot> Run(MessageSource& source,
                                    QuantumAssembler::ReportFn on_report,
                                    bool flush_partial = true);

  /// The live vocabulary (grows across runs and restarts). Writable so a
  /// fresh deployment can SeedFrom() a known vocabulary before the first
  /// Run — a resumed one restores its dictionary from the checkpoint and
  /// must not be pre-seeded (RestoreState requires an empty dictionary).
  text::ConcurrentKeywordDictionary& dictionary() { return dictionary_; }
  const text::ConcurrentKeywordDictionary& dictionary() const {
    return dictionary_;
  }

  /// The sharded engine driving detection.
  engine::ParallelDetector& engine() { return *engine_; }

  /// Live counters (poll from any thread while Run is in flight). Valid
  /// after the first Run() started.
  const IngestMetrics* metrics() const {
    return pipeline_ != nullptr ? &pipeline_->metrics() : nullptr;
  }

  /// Checkpoints that failed to write (the stream keeps flowing; the
  /// recovery point just ages until the next attempt succeeds).
  std::uint64_t checkpoint_failures() const { return checkpoint_failures_; }

  /// Quanta replayed from the delta during the last Resume().
  std::uint64_t replayed_quanta() const { return replayed_quanta_; }

  const IngestConfig& ingest_config() const { return ingest_config_; }

 private:
  /// The assembler ProcessFn: detect, record, checkpoint when due.
  detect::QuantumReport ProcessQuantum(const stream::Quantum& quantum);

  /// Writes one checkpoint (full or delta per the schedule) at the quantum
  /// boundary just crossed. `quantum` is the quantum that closed.
  void WriteCheckpoint(const stream::Quantum& quantum);

  /// Deletes checkpoint files of generations older than the previous full.
  void CollectGarbage(std::uint64_t keep_from_ordinal);

  IngestConfig ingest_config_;
  engine::ParallelDetectorConfig engine_config_;
  DurableConfig durable_;

  text::ConcurrentKeywordDictionary dictionary_;
  std::unique_ptr<engine::ParallelDetector> engine_;
  std::unique_ptr<IngestPipeline> pipeline_;
  detect::CheckpointManager manager_;

  // Stream coordinates carried across runs and restarts.
  std::uint64_t next_seq_ = 0;
  std::uint64_t quanta_cut_total_ = 0;
  std::uint64_t records_read_base_ = 0;
  std::uint64_t shed_base_ = 0;

  // Checkpoint schedule state.
  std::uint64_t ordinal_ = 0;  // next file ordinal
  std::uint64_t prev_full_ordinal_ = 0;
  std::size_t checkpoints_since_full_ = 0;
  bool have_full_ = false;
  std::size_t full_dictionary_size_ = 0;  // vocab size at the last full
  std::size_t quanta_since_checkpoint_ = 0;
  std::int64_t last_checkpoint_ns_ = 0;
  std::uint64_t checkpoint_failures_ = 0;
  // Lossless-replay window: set when a resumed Run starts with shedding
  // suppressed, cleared at the first successful post-resume checkpoint.
  bool suppression_active_ = false;

  // Resume state consumed by the next Run().
  bool resume_pending_ = false;
  bool resume_consumed_ = false;
  SourcePosition resume_cursor_;
  std::vector<stream::Message> resume_pending_messages_;
  QuantumIndex resume_next_quantum_ = 0;
  std::uint64_t resume_ns_ = 0;
  std::uint64_t replayed_quanta_ = 0;

  // Active-run wiring (driver thread only).
  QuantumAssembler* active_assembler_ = nullptr;
};

}  // namespace scprt::ingest

#endif  // SCPRT_INGEST_DURABLE_H_
