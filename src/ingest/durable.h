// Checkpoint-aware ingest: a raw-text deployment that survives crashes.
//
// DurableIngest wires a durability::Backend into the IngestPipeline.
// While the pipeline runs, every cut quantum is handed to the backend at
// the quantum boundary — under the engine's ShardPool::Quiesce fence, on
// the driver thread — together with the deployment's frontend state:
//
//   * the assembler's quantizer clock + pending partial quantum (the
//     outermost accumulation point of the ingest path),
//   * the live keyword dictionary, the admission policy/seed, the source
//     cursor of the record that closed the quantum, and the stream
//     counters (snapshot_io::IngestState).
//
// The backend decides what that boundary persists:
//
//   * durability::SnapshotBackend — cadence full/delta checkpoint files
//     (full-NNNNNN.ckpt / delta-NNNNNN.ckpt, tmp + rename, one fallback
//     generation) — the scheme this class used to implement inline;
//   * durability::WalBackend — one CRC-framed log record per quantum with
//     group commit, full-snapshot segments on the full cadence, and a
//     MANIFEST + CURRENT pair naming the generation in force.
//
// Resume() asks the backend to recover the newest durable generation,
// re-installs the dictionary, admission seeds and stream counters, and
// Run() then Seek()s the source back to the saved cursor and replays only
// the tail since the recovered fence. Replayed records re-enter the normal
// tokenize/intern path with shedding suppressed
// (RunOptions::suppress_shedding), so the post-restore report stream is
// bit-identical to a never-restarted pipeline's at any worker and engine
// thread count, under either backend — tests/ingest_checkpoint_test.cc
// proves it seeded and fresh-dictionary. Recovery cost is surfaced as a
// first-class metric (IngestSnapshot::recovery_seconds, checkpoint_* and
// commit_* counters); commit failures surface typed
// (IngestSnapshot::checkpoint_failures / sync_failures, last_error()).

#ifndef SCPRT_INGEST_DURABLE_H_
#define SCPRT_INGEST_DURABLE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "durability/backend.h"
#include "engine/parallel_detector.h"
#include "ingest/assembler.h"
#include "ingest/pipeline.h"
#include "ingest/source.h"
#include "text/concurrent_dictionary.h"

namespace scprt::ingest {

/// Durability scheme, cadence and placement.
struct DurableConfig {
  /// Directory the durability files live in (created if missing).
  std::string directory;
  /// Which durability::Backend runs underneath (snapshot or WAL).
  durability::BackendKind backend = durability::BackendKind::kSnapshot;
  /// How aggressively commits are fsynced (see durability::FsyncLevel).
  durability::FsyncLevel fsync = durability::FsyncLevel::kNone;
  /// Checkpoint cadence in quanta: the snapshot backend writes a file
  /// every K cut quanta; the WAL backend commits every quantum and uses K
  /// as its group-commit fsync interval. (0 disables the count trigger;
  /// at least one of the two triggers must stay enabled.)
  std::size_t checkpoint_quanta = 8;
  /// Also checkpoint when T seconds passed since the last one, evaluated
  /// at quantum boundaries (0 disables the time trigger).
  double checkpoint_seconds = 0.0;
  /// Every Nth checkpoint is a full snapshot (snapshot backend); the WAL
  /// backend cuts a segment every checkpoint_quanta * full_interval
  /// quanta (1 = every checkpoint is full).
  std::size_t full_interval = 4;
  /// Replay the post-checkpoint tail with shedding suppressed, reverting
  /// to the configured policy at the first successful post-resume
  /// commit (see RunOptions::suppress_shedding and the resume
  /// runbook in docs/operations.md).
  bool suppress_shedding_on_resume = true;
};

/// What Resume() found.
struct ResumeResult {
  enum class Outcome {
    /// No usable checkpoint — the session starts from scratch.
    kFresh,
    /// State restored; Run() will seek the source and continue.
    kResumed,
    /// Durable files exist but none could be restored.
    kFailed,
  };
  Outcome outcome = Outcome::kFresh;
  /// Typed reason of the *newest* failing artifact when anything failed
  /// to load (also set when an older generation rescued the resume).
  durability::Error error;
  /// Human-readable trail: which files loaded, which were skipped and why.
  std::string detail;
  /// Artifacts actually restored (empty when not resumed): the base full
  /// snapshot / segment, and the delta file / WAL tail replayed on top.
  std::string full_path;
  std::string delta_path;
  /// Stream coordinates the session will continue from.
  std::uint64_t next_seq = 0;
  QuantumIndex next_quantum = 0;
  SourcePosition cursor;
};

/// A durable ingest session: owns the dictionary, the sharded engine, the
/// pipeline and the durability backend. Construct, optionally Resume(),
/// then Run() — possibly repeatedly (each Run continues the stream where
/// the previous one ended).
class DurableIngest {
 public:
  DurableIngest(const IngestConfig& ingest,
                const engine::ParallelDetectorConfig& engine,
                const DurableConfig& durable);
  ~DurableIngest();

  DurableIngest(const DurableIngest&) = delete;
  DurableIngest& operator=(const DurableIngest&) = delete;

  /// Restores the newest recoverable generation from the directory. Call
  /// at most once, before the first Run(). A missing or empty directory
  /// is a fresh start, not an error.
  ResumeResult Resume();

  /// Pumps `source` through the pipeline into the engine, committing at
  /// quantum boundaries per the backend's policy. After a successful
  /// Resume() the source is first Seek()ed to the saved cursor; returns
  /// nullopt (nothing consumed) when that seek fails — an unseekable
  /// source cannot replay its tail. `on_report` (optional) observes every
  /// quantum report. `flush_partial` keeps the live end-of-stream
  /// semantics (report on the trailing partial quantum); pass false when
  /// this Run is a segment of a longer stream — the partial stays pending
  /// and the next Run (or the commit + resume path) continues it.
  std::optional<IngestSnapshot> Run(MessageSource& source,
                                    QuantumAssembler::ReportFn on_report,
                                    bool flush_partial = true);

  /// The live vocabulary (grows across runs and restarts). Writable so a
  /// fresh deployment can SeedFrom() a known vocabulary before the first
  /// Run — a resumed one restores its dictionary from the checkpoint and
  /// must not be pre-seeded (RestoreState requires an empty dictionary).
  text::ConcurrentKeywordDictionary& dictionary() { return dictionary_; }
  const text::ConcurrentKeywordDictionary& dictionary() const {
    return dictionary_;
  }

  /// The sharded engine driving detection.
  engine::ParallelDetector& engine() { return *engine_; }

  /// The durability backend in force.
  const durability::Backend& backend() const { return *backend_; }

  /// Live counters (poll from any thread while Run is in flight). Valid
  /// after the first Run() started.
  const IngestMetrics* metrics() const {
    return pipeline_ != nullptr ? &pipeline_->metrics() : nullptr;
  }

  /// Commits that failed (the stream keeps flowing; the recovery point
  /// just ages until the next attempt succeeds).
  std::uint64_t checkpoint_failures() const { return checkpoint_failures_; }

  /// Typed reason of the most recent commit failure (ok() when none yet).
  const durability::Error& last_error() const { return last_error_; }

  /// Quanta replayed from the delta/WAL tail during the last Resume().
  std::uint64_t replayed_quanta() const { return replayed_quanta_; }

  const IngestConfig& ingest_config() const { return ingest_config_; }

 private:
  /// The assembler ProcessFn: detect, then hand the boundary to the
  /// backend.
  detect::QuantumReport ProcessQuantum(const stream::Quantum& quantum);

  IngestConfig ingest_config_;
  engine::ParallelDetectorConfig engine_config_;
  DurableConfig durable_;

  text::ConcurrentKeywordDictionary dictionary_;
  std::unique_ptr<engine::ParallelDetector> engine_;
  std::unique_ptr<IngestPipeline> pipeline_;
  std::unique_ptr<durability::Backend> backend_;

  // Stream coordinates carried across runs and restarts.
  std::uint64_t next_seq_ = 0;
  std::uint64_t quanta_cut_total_ = 0;
  std::uint64_t records_read_base_ = 0;
  std::uint64_t shed_base_ = 0;

  std::uint64_t checkpoint_failures_ = 0;
  std::uint64_t sync_failures_seen_ = 0;
  durability::Error last_error_;
  // Lossless-replay window: set when a resumed Run starts with shedding
  // suppressed, cleared at the first successful post-resume commit.
  bool suppression_active_ = false;

  // Resume state consumed by the next Run().
  bool resume_pending_ = false;
  bool resume_consumed_ = false;
  SourcePosition resume_cursor_;
  std::vector<stream::Message> resume_pending_messages_;
  QuantumIndex resume_next_quantum_ = 0;
  std::uint64_t resume_ns_ = 0;
  std::uint64_t replayed_quanta_ = 0;

  // Active-run wiring (driver thread only).
  QuantumAssembler* active_assembler_ = nullptr;
};

}  // namespace scprt::ingest

#endif  // SCPRT_INGEST_DURABLE_H_
