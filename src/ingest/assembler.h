// The sink side of the ingest pipeline: where finalized messages go, and
// the canonical sink — a QuantumAssembler that cuts δ-sized quanta and
// drives a detector.

#ifndef SCPRT_INGEST_ASSEMBLER_H_
#define SCPRT_INGEST_ASSEMBLER_H_

#include <functional>
#include <vector>

#include "detect/detector.h"
#include "engine/parallel_detector.h"
#include "ingest/metrics.h"
#include "stream/message.h"
#include "stream/quantizer.h"

namespace scprt::ingest {

/// Receives finalized messages from the pipeline, in stream order, on the
/// pipeline's driver thread.
class MessageSink {
 public:
  virtual ~MessageSink() = default;

  /// One message. Called in seq order.
  virtual void Push(stream::Message message) = 0;

  /// End of stream (flush opportunity). Default: nothing.
  virtual void Finish() {}

  /// The pipeline hands its live counters to the sink before pumping, so
  /// sink-side progress (quanta cut) shows up in the same snapshot as the
  /// frontend counters. Default: ignored.
  virtual void BindMetrics(IngestMetrics* metrics) { (void)metrics; }
};

/// Cuts the message stream into δ-sized quanta and hands each to a
/// processing function — the serial detector, the sharded engine, or a
/// test double. A trailing partial quantum is processed on Finish() when
/// `flush_partial` is set (live semantics: end of stream means "report on
/// what arrived"), matching stream::SplitIntoQuanta(keep_partial=true).
class QuantumAssembler final : public MessageSink {
 public:
  using ProcessFn =
      std::function<detect::QuantumReport(const stream::Quantum&)>;
  using ReportFn = std::function<void(const detect::QuantumReport&)>;

  /// `process` consumes each cut quantum; `on_report` (optional) observes
  /// every report as it is produced.
  QuantumAssembler(std::size_t quantum_size, ProcessFn process,
                   ReportFn on_report = nullptr, bool flush_partial = true);

  /// Sinks driving the real detectors (borrowed; must outlive this).
  static QuantumAssembler For(detect::EventDetector& detector,
                              ReportFn on_report = nullptr,
                              bool flush_partial = true);
  static QuantumAssembler For(engine::ParallelDetector& detector,
                              ReportFn on_report = nullptr,
                              bool flush_partial = true);

  void Push(stream::Message message) override;
  void Finish() override;
  void BindMetrics(IngestMetrics* metrics) override { metrics_ = metrics; }

  /// Whether reports accumulate in reports() (default). Long-running
  /// streaming consumers that take reports via the callback should turn
  /// this off — retention grows one QuantumReport per δ messages forever.
  void set_keep_reports(bool keep) { keep_reports_ = keep; }

  /// Every report produced so far, in quantum order (empty when
  /// keep_reports is off).
  const std::vector<detect::QuantumReport>& reports() const {
    return reports_;
  }
  std::vector<detect::QuantumReport> TakeReports() {
    return std::move(reports_);
  }

  /// Quanta cut so far.
  std::uint64_t quanta() const { return quanta_; }

  /// The δ-cut quantizer — in the ingest pipeline this is the outermost
  /// accumulation point, so its clock and pending partial quantum are what
  /// a checkpoint must capture (detect::CheckpointExtras).
  const stream::Quantizer& quantizer() const { return quantizer_; }

  /// Checkpoint resume: installs the restored clock, pending partial
  /// quantum and cumulative cut count in one step. Same contract as
  /// stream::Quantizer::Restore — `pending` must hold fewer than a
  /// quantum's worth of messages; returns false (assembler unchanged)
  /// otherwise.
  bool Restore(QuantumIndex next_index,
               std::vector<stream::Message> pending, std::uint64_t quanta);

  /// Moves the unflushed partial quantum out (a finished-without-flush
  /// segment run hands it to the next segment's assembler).
  std::vector<stream::Message> TakePending() {
    return quantizer_.TakePending();
  }

 private:
  void Process(const stream::Quantum& quantum);

  stream::Quantizer quantizer_;
  ProcessFn process_;
  ReportFn on_report_;
  bool flush_partial_;
  bool keep_reports_ = true;
  bool finished_ = false;
  std::uint64_t quanta_ = 0;
  IngestMetrics* metrics_ = nullptr;
  std::vector<detect::QuantumReport> reports_;
};

/// Swallows messages (frontend-only benchmarking).
class NullSink final : public MessageSink {
 public:
  void Push(stream::Message message) override {
    messages_ += 1;
    keywords_ += message.keywords.size();
  }

  std::uint64_t messages() const { return messages_; }
  std::uint64_t keywords() const { return keywords_; }

 private:
  std::uint64_t messages_ = 0;
  std::uint64_t keywords_ = 0;
};

/// Collects messages verbatim (tests).
class CollectSink final : public MessageSink {
 public:
  void Push(stream::Message message) override {
    messages_.push_back(std::move(message));
  }

  const std::vector<stream::Message>& messages() const { return messages_; }

 private:
  std::vector<stream::Message> messages_;
};

}  // namespace scprt::ingest

#endif  // SCPRT_INGEST_ASSEMBLER_H_
