#include "ingest/source.h"

#include <cctype>
#include <charconv>
#include <fstream>

#include "ingest/jsonl.h"
#include "ingest/text_export.h"

namespace scprt::ingest {

namespace {

// Reads the next non-blank line; false at end of stream.
bool NextLine(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::size_t i = 0;
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i < line.size()) return true;
  }
  return false;
}

// Strict decimal parse of a whole field into Int.
template <typename Int>
bool ParseField(std::string_view field, Int& out) {
  const char* begin = field.data();
  const char* end = begin + field.size();
  auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc() && ptr == end;
}

// tellg() that tolerates a set eofbit (the last line of a file without a
// trailing newline leaves getline at EOF while the record is still valid).
// Returns -1 for genuinely non-seekable streams (stdin, pipes).
std::streamoff TellAfterRecord(std::istream& in) {
  const bool was_eof = in.eof();
  if (was_eof) in.clear(in.rdstate() & ~std::ios::eofbit);
  const std::streamoff pos = in.tellg();
  if (was_eof) in.setstate(std::ios::eofbit);
  return pos;
}

void AdvancePosition(std::istream& in, SourcePosition& position) {
  ++position.record_index;
  const std::streamoff offset = TellAfterRecord(in);
  position.byte_offset =
      offset >= 0 ? static_cast<std::uint64_t>(offset) : 0;
}

bool StreamSeekable(std::istream* in) {
  return in != nullptr && TellAfterRecord(*in) >= 0;
}

bool SeekStream(std::istream* in, const SourcePosition& position,
                SourcePosition& tracked) {
  if (in == nullptr) return false;
  in->clear();
  in->seekg(static_cast<std::streamoff>(position.byte_offset));
  if (!*in) return false;
  tracked = position;
  return true;
}

}  // namespace

JsonlSource::JsonlSource(const std::string& path) {
  auto file = std::make_unique<std::ifstream>(path);
  if (!*file) return;
  in_ = file.get();
  owned_ = std::move(file);
}

bool JsonlSource::Next(RawRecord& out) {
  if (!in_) return false;
  while (NextLine(*in_, line_)) {
    JsonlRecord record;
    if (!ParseJsonlRecord(line_, record)) {
      ++malformed_;
      continue;
    }
    out = RawRecord{};
    out.user = record.user;
    out.event_id = record.event_id;
    out.text = std::move(record.text);
    AdvancePosition(*in_, position_);
    return true;
  }
  return false;
}

bool JsonlSource::seekable() const { return StreamSeekable(in_); }

bool JsonlSource::Seek(const SourcePosition& position) {
  return SeekStream(in_, position, position_);
}

TsvSource::TsvSource(const std::string& path) {
  auto file = std::make_unique<std::ifstream>(path);
  if (!*file) return;
  in_ = file.get();
  owned_ = std::move(file);
}

bool TsvSource::seekable() const { return StreamSeekable(in_); }

bool TsvSource::Seek(const SourcePosition& position) {
  return SeekStream(in_, position, position_);
}

bool TsvSource::Next(RawRecord& out) {
  if (!in_) return false;
  while (NextLine(*in_, line_)) {
    if (line_[0] == '#') continue;
    const std::string_view line = line_;
    const std::size_t tab = line.find('\t');
    if (tab == std::string_view::npos) {
      ++malformed_;
      continue;
    }
    UserId user = 0;
    if (!ParseField(line.substr(0, tab), user)) {
      ++malformed_;
      continue;
    }
    std::string_view rest = line.substr(tab + 1);
    std::int32_t event_id = stream::kBackground;
    // Optional middle column: `user \t event \t text`. Text may not contain
    // tabs, so a second tab whose prefix parses as an integer is the label.
    const std::size_t tab2 = rest.find('\t');
    if (tab2 != std::string_view::npos) {
      std::int32_t label = 0;
      if (ParseField(rest.substr(0, tab2), label)) {
        event_id = label;
        rest = rest.substr(tab2 + 1);
      }
    }
    if (rest.empty()) {
      ++malformed_;
      continue;
    }
    out = RawRecord{};
    out.user = user;
    out.event_id = event_id;
    out.text.assign(rest);
    AdvancePosition(*in_, position_);
    return true;
  }
  return false;
}

bool TraceSource::Next(RawRecord& out) {
  if (next_ >= messages_->size()) return false;
  const stream::Message& message = (*messages_)[next_++];
  out = RawRecord{};
  out.user = message.user;
  out.event_id = message.event_id;
  out.keywords = message.keywords;
  out.pretokenized = true;
  return true;
}

bool TraceSource::Seek(const SourcePosition& position) {
  if (position.record_index > messages_->size()) return false;
  next_ = position.record_index;
  return true;
}

GeneratorSource::GeneratorSource(const stream::SyntheticConfig& config)
    : trace_(stream::GenerateSyntheticTrace(config)) {}

bool GeneratorSource::Seek(const SourcePosition& position) {
  if (position.record_index > trace_.messages.size()) return false;
  next_ = position.record_index;
  return true;
}

bool GeneratorSource::Next(RawRecord& out) {
  if (next_ >= trace_.messages.size()) return false;
  const stream::Message& message = trace_.messages[next_++];
  out = RawRecord{};
  out.user = message.user;
  out.event_id = message.event_id;
  out.text = RenderMessageText(message, trace_.dictionary);
  return true;
}

}  // namespace scprt::ingest
