// Admission control for the ingest frontend: what to do with an arriving
// record when the staging queues are full.
//
// Below capacity every policy admits everything — overload is the only
// discriminator, so "zero drops below capacity" holds by construction
// (tests/ingest_pipeline_test.cc). Under overload:
//
//   * kBlock      — never shed; the reader waits for queue space (classic
//                   backpressure, correct for file replay).
//   * kDropTail   — shed the arriving record (bounded latency, correct for
//                   live firehoses where stale messages lose value).
//   * kFairSample — shed all records from users outside a deterministic,
//                   seeded sample; records from sampled users wait for
//                   space. Sampling by *user* (not message) follows the
//                   paper's user-id-based duplicate resistance (Section
//                   3.2): one user flooding duplicates cannot buy more
//                   than its per-user admission share, and correlation
//                   evidence — distinct user ids per keyword — degrades
//                   gracefully because surviving users keep their entire
//                   message stream.

#ifndef SCPRT_INGEST_ADMISSION_H_
#define SCPRT_INGEST_ADMISSION_H_

#include <cstdint>

#include "common/types.h"

namespace scprt::ingest {

/// What to do with an arriving record under overload.
enum class OverloadPolicy {
  kBlock,
  kDropTail,
  kFairSample,
};

/// Admission tuning.
struct AdmissionConfig {
  OverloadPolicy policy = OverloadPolicy::kBlock;
  /// Seed of the kFairSample user hash; the surviving user set is a pure
  /// function of (user, seed, sample_keep_fraction).
  std::uint64_t seed = 0;
  /// Fraction of users admitted under overload by kFairSample, in (0, 1].
  double sample_keep_fraction = 0.25;
};

/// Verdict for one record.
enum class Admission {
  /// Enqueue now (space is available).
  kAdmit,
  /// Keep the record and retry once the queues drain.
  kRetry,
  /// Drop the record (counted as shed).
  kShed,
};

/// Stateless policy evaluator; decisions depend only on the config, the
/// record's user and the instantaneous queue-full flag, so replaying the
/// same (user, full) sequence yields the same verdicts.
class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionConfig& config);

  /// Decides the fate of a record from `user` given whether its staging
  /// queue is currently full.
  Admission Decide(UserId user, bool queue_full) const;

  /// True if `user` is inside the kFairSample survivor set — a pure
  /// function of the config, exposed so tests and operators can predict
  /// exactly which users survive overload under a given seed.
  bool InSample(UserId user) const;

  const AdmissionConfig& config() const { return config_; }

 private:
  AdmissionConfig config_;
  /// InSample threshold precomputed from sample_keep_fraction.
  std::uint64_t keep_threshold_ = 0;
};

}  // namespace scprt::ingest

#endif  // SCPRT_INGEST_ADMISSION_H_
