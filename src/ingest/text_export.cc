#include "ingest/text_export.h"

#include <fstream>
#include <ostream>

#include "ingest/jsonl.h"

namespace scprt::ingest {

std::string RenderMessageText(const stream::Message& message,
                              const text::KeywordDictionary& dictionary) {
  std::string text;
  for (std::size_t i = 0; i < message.keywords.size(); ++i) {
    if (i > 0) text.push_back(' ');
    text += dictionary.Spelling(message.keywords[i]);
  }
  return text;
}

std::string RenderJsonlLine(const stream::Message& message,
                            const text::KeywordDictionary& dictionary) {
  std::string line = "{\"user\": " + std::to_string(message.user);
  if (message.event_id != stream::kBackground) {
    line += ", \"event\": " + std::to_string(message.event_id);
  }
  line += ", \"text\": ";
  AppendJsonString(RenderMessageText(message, dictionary), line);
  line.push_back('}');
  return line;
}

std::string RenderTsvLine(const stream::Message& message,
                          const text::KeywordDictionary& dictionary) {
  std::string line = std::to_string(message.user);
  if (message.event_id != stream::kBackground) {
    line.push_back('\t');
    line += std::to_string(message.event_id);
  }
  line.push_back('\t');
  line += RenderMessageText(message, dictionary);
  return line;
}

namespace {

template <typename RenderFn>
bool WriteLines(const stream::SyntheticTrace& trace, std::ostream& out,
                RenderFn render) {
  for (const stream::Message& message : trace.messages) {
    out << render(message, trace.dictionary) << '\n';
  }
  return static_cast<bool>(out);
}

}  // namespace

bool WriteJsonl(const stream::SyntheticTrace& trace, std::ostream& out) {
  return WriteLines(trace, out, RenderJsonlLine);
}

bool WriteTsv(const stream::SyntheticTrace& trace, std::ostream& out) {
  return WriteLines(trace, out, RenderTsvLine);
}

bool WriteJsonlFile(const stream::SyntheticTrace& trace,
                    const std::string& path) {
  std::ofstream out(path);
  return out && WriteJsonl(trace, out);
}

bool WriteTsvFile(const stream::SyntheticTrace& trace,
                  const std::string& path) {
  std::ofstream out(path);
  return out && WriteTsv(trace, out);
}

}  // namespace scprt::ingest
