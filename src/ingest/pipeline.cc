#include "ingest/pipeline.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <utility>

#include "common/check.h"
#include "engine/spsc_queue.h"
#include "obs/registry.h"
#include "text/stopwords.h"

namespace scprt::ingest {

namespace {

// A record in flight from driver to worker. The source cursor rides along
// so the driver knows, at collect time, how far the source had been
// consumed when this record was read (checkpoint fence bookkeeping).
struct WorkItem {
  RawRecord record;
  SourcePosition position;
};

// A record on its way back: resolved tokens plus passthrough fields.
struct DoneItem {
  UserId user = 0;
  std::int32_t event_id = stream::kBackground;
  std::vector<ResolvedToken> tokens;
  SourcePosition position;
};

}  // namespace

std::vector<ResolvedToken> TokenizeAndResolve(
    std::string_view message_text, const IngestConfig& config,
    const text::ConcurrentKeywordDictionary& dictionary,
    std::uint64_t* raw_tokens) {
  std::vector<std::string> words =
      text::Tokenize(message_text, config.tokenizer);
  if (raw_tokens) *raw_tokens = words.size();
  std::vector<ResolvedToken> tokens;
  tokens.reserve(words.size());
  for (std::string& word : words) {
    if (config.drop_stopwords && text::IsStopWord(word)) continue;
    if (config.synonyms) {
      // When mapped, Canonical returns a view into the table's own storage
      // (never into `word`), so assigning through it is alias-free.
      const std::string_view canonical = config.synonyms->Canonical(word);
      if (canonical != word) word.assign(canonical);
    }
    ResolvedToken token;
    token.id = dictionary.TryLookup(word);
    if (token.id == kInvalidKeyword) token.spelling = std::move(word);
    tokens.push_back(std::move(token));
  }
  return tokens;
}

struct IngestPipeline::Worker {
  explicit Worker(std::size_t capacity) : in(capacity), out(capacity) {}

  engine::SpscQueue<WorkItem> in;
  engine::SpscQueue<DoneItem> out;
  // Bumped by the driver after every push (and at stop) to wake the worker.
  alignas(64) std::atomic<std::uint64_t> signal{0};
  std::jthread thread;  // last: joins before the queues are destroyed
};

IngestPipeline::IngestPipeline(const IngestConfig& config,
                               text::ConcurrentKeywordDictionary* dictionary)
    : config_(config), dictionary_(dictionary), admission_(config.admission) {
  SCPRT_CHECK(dictionary != nullptr);
  SCPRT_CHECK(config.queue_capacity >= 2 &&
              (config.queue_capacity & (config.queue_capacity - 1)) == 0);
  std::size_t workers = config.workers;
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    workers_.push_back(std::make_unique<Worker>(config.queue_capacity));
  }
  for (auto& worker : workers_) {
    Worker* raw = worker.get();
    raw->thread = std::jthread(
        [this, raw](std::stop_token stop) { WorkerLoop(stop, *raw); });
  }
}

IngestPipeline::~IngestPipeline() {
  for (auto& worker : workers_) {
    worker->thread.request_stop();
    worker->signal.fetch_add(1, std::memory_order_release);
    worker->signal.notify_one();
  }
  // std::jthread joins in its destructor.
}

std::size_t IngestPipeline::workers() const { return workers_.size(); }

IngestSnapshot IngestPipeline::Run(MessageSource& source, MessageSink& sink,
                                   const RunOptions& options) {
  metrics_.Reset();  // each Run's snapshot describes that run alone
  sink.BindMetrics(&metrics_);
  const std::size_t num_workers = workers_.size();

  std::uint64_t dispatch_seq = 0;  // records admitted into in-queues
  std::uint64_t collect_seq = 0;   // records delivered to the sink
  bool source_done = false;
  bool have_pending = false;
  RawRecord pending;
  SourcePosition pending_position;
  last_collected_position_ = source.Position();
  suppress_shedding_ = options.suppress_shedding;

  // Stage histograms (process-wide; one clock pair per batch / stall, so
  // the per-record cost stays under the obs overhead gate).
  obs::Histogram* const collect_hist =
      obs::Registry::Default().GetHistogram("ingest.collect_batch_ns");
  obs::Histogram* const stall_hist =
      obs::Registry::Default().GetHistogram("ingest.dispatch_stall_ns");

  // Collects every ready record in round-robin order; returns the number
  // delivered. Interning happens here — single thread, stream order.
  const auto collect_ready = [&]() -> std::size_t {
    const std::int64_t collect_start =
        obs::Enabled() ? obs::MonotonicNanos() : 0;
    std::size_t delivered = 0;
    DoneItem done;
    while (collect_seq < dispatch_seq &&
           workers_[collect_seq % num_workers]->out.TryPop(done)) {
      stream::Message message;
      message.user = done.user;
      message.seq = options.first_seq + collect_seq;
      message.event_id = done.event_id;
      message.keywords.reserve(done.tokens.size());
      for (ResolvedToken& token : done.tokens) {
        const KeywordId id = token.id != kInvalidKeyword
                                 ? token.id
                                 : dictionary_->Intern(token.spelling);
        // De-duplicate, preserving first occurrence (messages carry at
        // most a dozen keywords; linear scan beats a hash set here).
        if (std::find(message.keywords.begin(), message.keywords.end(),
                      id) == message.keywords.end()) {
          message.keywords.push_back(id);
        }
      }
      metrics_.AddKeywords(message.keywords.size());
      // Publish this record's cursor before delivery: a checkpoint hook
      // inside sink.Push sees exactly the position of the record that
      // closed the quantum.
      last_collected_position_ = done.position;
      sink.Push(std::move(message));
      metrics_.AddMessagesEmitted(1);
      ++collect_seq;
      ++delivered;
    }
    if (delivered > 0 && collect_start != 0) {
      collect_hist->Record(static_cast<std::uint64_t>(
          obs::MonotonicNanos() - collect_start));
    }
    return delivered;
  };

  // Start of the current admission-retry streak (0 = not stalled). Clock
  // reads happen only while actually backpressured.
  std::int64_t stall_start_ns = 0;

  while (!source_done || collect_seq < dispatch_seq || have_pending) {
    // --- Read ---
    if (!have_pending && !source_done) {
      const std::uint64_t malformed_before = source.malformed_count();
      if (source.Next(pending)) {
        have_pending = true;
        pending_position = source.Position();
        metrics_.AddRecordsRead(1);
      } else {
        source_done = true;
      }
      const std::uint64_t malformed_now = source.malformed_count();
      if (malformed_now > malformed_before) {
        metrics_.AddMalformed(malformed_now - malformed_before);
      }
    }

    // --- Admit + dispatch (round-robin keeps stream order recoverable) ---
    bool progressed = false;
    if (have_pending) {
      Worker& target = *workers_[dispatch_seq % num_workers];
      const bool queue_full = target.in.size() >= target.in.capacity();
      const Admission verdict =
          suppress_shedding_
              ? (queue_full ? Admission::kRetry : Admission::kAdmit)
              : admission_.Decide(pending.user, queue_full);
      switch (verdict) {
        case Admission::kAdmit: {
          target.in.TryPush(
              WorkItem{std::move(pending), pending_position});  // fits
          target.signal.fetch_add(1, std::memory_order_release);
          target.signal.notify_one();
          metrics_.AddAdmitted(1);
          metrics_.ObserveQueueDepth(target.in.size());
          have_pending = false;
          ++dispatch_seq;
          progressed = true;
          break;
        }
        case Admission::kShed:
          metrics_.AddShed(1);
          have_pending = false;
          progressed = true;
          break;
        case Admission::kRetry:
          if (stall_start_ns == 0 && obs::Enabled()) {
            stall_start_ns = obs::MonotonicNanos();
          }
          break;  // back off into collection; retried next iteration
      }
      if (progressed && stall_start_ns != 0) {
        stall_hist->Record(static_cast<std::uint64_t>(
            obs::MonotonicNanos() - stall_start_ns));
        stall_start_ns = 0;
      }
    }

    // --- Collect in order ---
    if (collect_ready() > 0) progressed = true;

    if (!progressed && (have_pending || collect_seq < dispatch_seq)) {
      // Stalled on a full in-queue or an empty out-queue: the bottleneck
      // is a worker (or the sink's last quantum); yield the core to it.
      std::this_thread::yield();
    }
  }

  sink.Finish();
  return metrics_.Snapshot();
}

void IngestPipeline::WorkerLoop(std::stop_token stop, Worker& worker) {
  std::uint64_t seen = 0;
  while (true) {
    WorkItem item;
    while (worker.in.TryPop(item)) {
      DoneItem done;
      done.user = item.record.user;
      done.event_id = item.record.event_id;
      done.position = item.position;
      if (item.record.pretokenized) {
        done.tokens.reserve(item.record.keywords.size());
        for (const KeywordId id : item.record.keywords) {
          done.tokens.push_back(ResolvedToken{id, {}});
        }
      } else {
        const std::int64_t t0 = MonotonicNanos();
        std::uint64_t raw_tokens = 0;
        done.tokens = TokenizeAndResolve(item.record.text, config_,
                                         *dictionary_, &raw_tokens);
        metrics_.AddTokens(raw_tokens);
        metrics_.AddTokenizeNs(
            static_cast<std::uint64_t>(MonotonicNanos() - t0));
      }
      // The out-queue is the same capacity as the in-queue, but the driver
      // may lag; as this worker is the only producer, a non-full size
      // check guarantees the subsequent push succeeds (the driver only
      // ever shrinks the queue).
      while (worker.out.size() >= worker.out.capacity()) {
        if (stop.stop_requested()) return;  // driver abandoned the run
        std::this_thread::yield();
      }
      worker.out.TryPush(std::move(done));
    }
    if (stop.stop_requested()) return;
    const std::uint64_t signal = worker.signal.load(std::memory_order_acquire);
    if (signal != seen) {
      seen = signal;  // new pushes raced with the drain loop — re-check
      continue;
    }
    worker.signal.wait(signal, std::memory_order_acquire);
  }
}

}  // namespace scprt::ingest
