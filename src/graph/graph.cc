#include "graph/graph.h"

#include <algorithm>

#include "common/check.h"

namespace scprt::graph {

namespace {

// Inserts `v` into the sorted vector `vec`; returns false if present.
bool SortedInsert(std::vector<NodeId>& vec, NodeId v) {
  auto it = std::lower_bound(vec.begin(), vec.end(), v);
  if (it != vec.end() && *it == v) return false;
  vec.insert(it, v);
  return true;
}

// Erases `v` from the sorted vector `vec`; returns false if absent.
bool SortedErase(std::vector<NodeId>& vec, NodeId v) {
  auto it = std::lower_bound(vec.begin(), vec.end(), v);
  if (it == vec.end() || *it != v) return false;
  vec.erase(it);
  return true;
}

bool SortedContains(const std::vector<NodeId>& vec, NodeId v) {
  return std::binary_search(vec.begin(), vec.end(), v);
}

}  // namespace

bool DynamicGraph::AddNode(NodeId n) {
  return adjacency_.try_emplace(n).second;
}

bool DynamicGraph::RemoveNode(NodeId n) {
  auto it = adjacency_.find(n);
  if (it == adjacency_.end()) return false;
  for (NodeId neighbor : it->second) {
    auto nit = adjacency_.find(neighbor);
    SCPRT_DCHECK(nit != adjacency_.end());
    SortedErase(nit->second, n);
  }
  edge_count_ -= it->second.size();
  adjacency_.erase(it);
  return true;
}

bool DynamicGraph::AddEdge(NodeId a, NodeId b) {
  if (a == b) return false;
  auto& na = adjacency_[a];
  auto& nb = adjacency_[b];
  if (!SortedInsert(na, b)) return false;
  SortedInsert(nb, a);
  ++edge_count_;
  return true;
}

bool DynamicGraph::RemoveEdge(NodeId a, NodeId b) {
  auto ita = adjacency_.find(a);
  auto itb = adjacency_.find(b);
  if (ita == adjacency_.end() || itb == adjacency_.end()) return false;
  if (!SortedErase(ita->second, b)) return false;
  SortedErase(itb->second, a);
  --edge_count_;
  return true;
}

bool DynamicGraph::HasEdge(NodeId a, NodeId b) const {
  auto it = adjacency_.find(a);
  if (it == adjacency_.end()) return false;
  return SortedContains(it->second, b);
}

const std::vector<NodeId>& DynamicGraph::Neighbors(NodeId n) const {
  auto it = adjacency_.find(n);
  SCPRT_CHECK(it != adjacency_.end());
  return it->second;
}

std::size_t DynamicGraph::Degree(NodeId n) const {
  auto it = adjacency_.find(n);
  return it == adjacency_.end() ? 0 : it->second.size();
}

std::vector<NodeId> DynamicGraph::CommonNeighbors(NodeId a, NodeId b) const {
  std::vector<NodeId> out;
  auto ita = adjacency_.find(a);
  auto itb = adjacency_.find(b);
  if (ita == adjacency_.end() || itb == adjacency_.end()) return out;
  std::set_intersection(ita->second.begin(), ita->second.end(),
                        itb->second.begin(), itb->second.end(),
                        std::back_inserter(out));
  return out;
}

bool DynamicGraph::HaveCommonNeighbor(NodeId a, NodeId b) const {
  auto ita = adjacency_.find(a);
  auto itb = adjacency_.find(b);
  if (ita == adjacency_.end() || itb == adjacency_.end()) return false;
  const auto& va = ita->second;
  const auto& vb = itb->second;
  std::size_t i = 0, j = 0;
  while (i < va.size() && j < vb.size()) {
    if (va[i] == vb[j]) return true;
    if (va[i] < vb[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

std::vector<NodeId> DynamicGraph::Nodes() const {
  std::vector<NodeId> out;
  out.reserve(adjacency_.size());
  for (const auto& [n, _] : adjacency_) out.push_back(n);
  return out;
}

std::vector<Edge> DynamicGraph::Edges() const {
  std::vector<Edge> out;
  out.reserve(edge_count_);
  for (const auto& [n, neighbors] : adjacency_) {
    for (NodeId m : neighbors) {
      if (n < m) out.push_back(Edge{n, m});
    }
  }
  return out;
}

void DynamicGraph::Clear() {
  adjacency_.clear();
  edge_count_ = 0;
}

void DynamicGraph::Save(BinaryWriter& out) const {
  std::vector<NodeId> nodes = Nodes();
  std::sort(nodes.begin(), nodes.end());
  out.U64(nodes.size());
  for (NodeId n : nodes) out.U32(n);
  std::vector<Edge> edges = Edges();
  std::sort(edges.begin(), edges.end());
  out.U64(edges.size());
  for (const Edge& e : edges) {
    out.U32(e.u);
    out.U32(e.v);
  }
}

bool DynamicGraph::Restore(BinaryReader& in) {
  Clear();
  const std::uint64_t nodes = in.U64();
  if (!in.CheckLength(nodes, 4)) return false;
  adjacency_.reserve(nodes);
  for (std::uint64_t i = 0; i < nodes; ++i) {
    if (!AddNode(in.U32())) in.Fail();  // duplicate node id
  }
  const std::uint64_t edges = in.U64();
  if (!in.CheckLength(edges, 8)) {
    Clear();
    return false;
  }
  for (std::uint64_t i = 0; i < edges; ++i) {
    const NodeId u = in.U32();
    const NodeId v = in.U32();
    // Endpoints must pre-exist as serialized nodes; AddEdge would otherwise
    // silently create them and mask a corrupt node section.
    if (!in.ok() || !HasNode(u) || !HasNode(v) || !AddEdge(u, v)) {
      Clear();
      return false;
    }
  }
  if (!in.ok()) {
    Clear();
    return false;
  }
  return true;
}

}  // namespace scprt::graph
