#include "graph/short_cycle.h"

#include <algorithm>

#include "common/check.h"

namespace scprt::graph {

std::vector<Edge> ShortCycle::CycleEdges() const {
  std::vector<Edge> edges;
  edges.reserve(length);
  for (int i = 0; i < length; ++i) {
    edges.push_back(Edge::Of(nodes[i], nodes[(i + 1) % length]));
  }
  return edges;
}

bool EdgeOnShortCycle(const DynamicGraph& g, NodeId u, NodeId v) {
  SCPRT_DCHECK(g.HasEdge(u, v));
  if (g.HaveCommonNeighbor(u, v)) return true;  // triangle
  // 4-cycle u - x - y - v: x in N(u)\{v}, y in N(v)\{u}, x != y, (x,y) edge.
  for (NodeId x : g.Neighbors(u)) {
    if (x == v) continue;
    for (NodeId y : g.Neighbors(v)) {
      if (y == u || y == x) continue;
      if (g.HasEdge(x, y)) return true;
    }
  }
  return false;
}

std::vector<ShortCycle> ShortCyclesThroughEdge(const DynamicGraph& g,
                                               NodeId u, NodeId v) {
  SCPRT_DCHECK(g.HasEdge(u, v));
  std::vector<ShortCycle> cycles;
  for (NodeId w : g.CommonNeighbors(u, v)) {
    cycles.push_back(ShortCycle{{u, v, w, kInvalidKeyword}, 3});
  }
  // 4-cycles u - x ... y - v. Canonical orientation: emit with x as the
  // neighbor of u; every 4-cycle through (u,v) has exactly one such (x, y)
  // pair, so no duplicates arise for a fixed edge.
  for (NodeId x : g.Neighbors(u)) {
    if (x == v) continue;
    for (NodeId y : g.Neighbors(v)) {
      if (y == u || y == x) continue;
      if (g.HasEdge(x, y)) {
        // Cycle order u -> v -> y -> x -> u.
        cycles.push_back(ShortCycle{{u, v, y, x}, 4});
      }
    }
  }
  return cycles;
}

std::vector<ShortCycle> AllShortCycles(const DynamicGraph& g) {
  std::vector<ShortCycle> cycles;
  // Triangles {a < b < c}: enumerate per edge (a, b) with common neighbor
  // c > b, so each triangle is emitted exactly once.
  // 4-cycles: enumerate per edge (a, b) as the cycle's lexicographically
  // smallest edge; require both far nodes to be > min(a, b)... A simpler
  // exact rule: a 4-cycle a-b-c-d (edges ab, bc, cd, da) is emitted from its
  // minimum node `a` with the smaller of the two neighbors first.
  for (const Edge& e : g.Edges()) {
    const NodeId a = e.u, b = e.v;  // a < b
    for (NodeId c : g.CommonNeighbors(a, b)) {
      if (c > b) cycles.push_back(ShortCycle{{a, b, c, kInvalidKeyword}, 3});
    }
  }
  // 4-cycles via the "minimum node" rule: for each node a, each pair of
  // neighbors x < y of a with a common neighbor z != a where a < x, a < y,
  // a < z gives cycle a-x-z-y-a; to emit once, require x < y.
  for (NodeId a : g.Nodes()) {
    const auto& na = g.Neighbors(a);
    for (std::size_t i = 0; i < na.size(); ++i) {
      for (std::size_t j = i + 1; j < na.size(); ++j) {
        const NodeId x = na[i], y = na[j];
        if (x < a || y < a) continue;
        for (NodeId z : g.CommonNeighbors(x, y)) {
          if (z <= a || z == a) continue;
          if (z == a) continue;
          // a is the strict minimum of {a, x, y, z}; emit each cycle once.
          cycles.push_back(ShortCycle{{a, x, z, y}, 4});
        }
      }
    }
  }
  return cycles;
}

}  // namespace scprt::graph
