#include "graph/bcc.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"

namespace scprt::graph {

namespace {

// Iterative Hopcroft-Tarjan. State per DFS frame: the node, its parent, and
// the index of the next neighbor to scan.
struct Frame {
  NodeId node;
  NodeId parent;
  bool has_parent;
  std::size_t next_neighbor;
};

class BccSolver {
 public:
  explicit BccSolver(const DynamicGraph& g) : g_(g) {}

  BccResult Run() {
    for (NodeId root : g_.Nodes()) {
      if (!disc_.count(root)) Dfs(root);
    }
    std::sort(result_.articulation_points.begin(),
              result_.articulation_points.end());
    return std::move(result_);
  }

 private:
  void Dfs(NodeId root) {
    std::vector<Frame> stack;
    stack.push_back(Frame{root, 0, false, 0});
    disc_[root] = low_[root] = timer_++;
    std::size_t root_children = 0;
    bool root_is_articulation = false;

    while (!stack.empty()) {
      Frame& frame = stack.back();
      const auto& neighbors = g_.Neighbors(frame.node);
      if (frame.next_neighbor < neighbors.size()) {
        const NodeId next = neighbors[frame.next_neighbor++];
        if (frame.has_parent && next == frame.parent) continue;
        auto it = disc_.find(next);
        if (it == disc_.end()) {
          // Tree edge: descend.
          edge_stack_.push_back(Edge::Of(frame.node, next));
          disc_[next] = low_[next] = timer_++;
          if (frame.node == root) ++root_children;
          stack.push_back(Frame{next, frame.node, true, 0});
        } else if (it->second < disc_[frame.node]) {
          // Back edge to an ancestor.
          edge_stack_.push_back(Edge::Of(frame.node, next));
          low_[frame.node] = std::min(low_[frame.node], it->second);
        }
      } else {
        // Finished `frame.node`; propagate low-link to the parent and close
        // the component if the parent is a cut point for this subtree.
        const NodeId child = frame.node;
        const bool child_has_parent = frame.has_parent;
        const NodeId parent = frame.parent;
        stack.pop_back();
        if (!child_has_parent) continue;
        low_[parent] = std::min(low_[parent], low_[child]);
        if (low_[child] >= disc_[parent]) {
          // parent is an articulation point (for non-root parents).
          if (parent != root) {
            result_.articulation_points.push_back(parent);
            seen_articulation_.insert(parent);
          } else if (root_children > 1) {
            root_is_articulation = true;
          }
          // Pop the component's edges.
          std::vector<Edge> component;
          const Edge boundary = Edge::Of(parent, child);
          while (true) {
            SCPRT_DCHECK(!edge_stack_.empty());
            Edge e = edge_stack_.back();
            edge_stack_.pop_back();
            component.push_back(e);
            if (e == boundary) break;
          }
          result_.components.push_back(std::move(component));
        }
      }
    }
    if (root_is_articulation && !seen_articulation_.count(root)) {
      result_.articulation_points.push_back(root);
      seen_articulation_.insert(root);
    }
    // Any leftover edges (possible when the root closes exactly at its last
    // child) belong to one final component.
    if (!edge_stack_.empty()) {
      result_.components.push_back(std::move(edge_stack_));
      edge_stack_.clear();
    }
  }

  const DynamicGraph& g_;
  BccResult result_;
  std::unordered_map<NodeId, int> disc_;
  std::unordered_map<NodeId, int> low_;
  std::unordered_set<NodeId> seen_articulation_;
  std::vector<Edge> edge_stack_;
  int timer_ = 0;
};

// De-duplicates articulation points discovered once per closing child.
void DedupArticulations(std::vector<NodeId>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

}  // namespace

BccResult BiconnectedComponents(const DynamicGraph& g) {
  BccSolver solver(g);
  BccResult result = solver.Run();
  DedupArticulations(result.articulation_points);
  return result;
}

bool IsBiconnectedEdgeSet(const std::vector<Edge>& edges) {
  if (edges.size() < 2) return false;
  DynamicGraph g;
  for (const Edge& e : edges) g.AddEdge(e.u, e.v);
  BccResult result = BiconnectedComponents(g);
  return result.components.size() == 1 &&
         result.components[0].size() == edges.size();
}

}  // namespace scprt::graph
