// Short-cycle queries — the primitive underlying the paper's Short Cycle
// Property (Section 4.1): an edge (u, v) satisfies SCP if besides the edge
// there is another path of length <= 3 between u and v, i.e., the edge lies
// on a cycle of length 3 or 4.

#ifndef SCPRT_GRAPH_SHORT_CYCLE_H_
#define SCPRT_GRAPH_SHORT_CYCLE_H_

#include <array>
#include <vector>

#include "graph/graph.h"

namespace scprt::graph {

/// A cycle of length 3 or 4. For triangles, nodes[3] == kInvalidKeyword.
struct ShortCycle {
  std::array<NodeId, 4> nodes;
  int length;  // 3 or 4

  /// The cycle's edges in normalized form (3 or 4 of them).
  std::vector<Edge> CycleEdges() const;
};

/// True if edge {u, v} (which must exist) lies on a cycle of length <= 4.
/// Cost O(deg(u) * deg(v)).
bool EdgeOnShortCycle(const DynamicGraph& g, NodeId u, NodeId v);

/// All short cycles through edge {u, v}. Triangles are emitted once; each
/// 4-cycle once (the two internal orientations are canonicalized). Cost
/// O(deg(u) * deg(v) * log deg).
std::vector<ShortCycle> ShortCyclesThroughEdge(const DynamicGraph& g,
                                               NodeId u, NodeId v);

/// All short cycles of the whole graph, each exactly once.
std::vector<ShortCycle> AllShortCycles(const DynamicGraph& g);

}  // namespace scprt::graph

#endif  // SCPRT_GRAPH_SHORT_CYCLE_H_
