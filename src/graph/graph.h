// Dynamic undirected graph with O(deg) updates and O(log deg) adjacency
// tests. This is the representation of the AKG (and, in tests/benchmarks,
// the CKG): node ids are KeywordIds; average degree in the paper's traces is
// < 6, so sorted adjacency vectors beat hash sets on both memory and speed.

#ifndef SCPRT_GRAPH_GRAPH_H_
#define SCPRT_GRAPH_GRAPH_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/binary_io.h"
#include "common/hash.h"
#include "common/types.h"

namespace scprt::graph {

/// Graph node id (a keyword in the detector's use).
using NodeId = KeywordId;

/// A normalized undirected edge: u < v always.
struct Edge {
  NodeId u;
  NodeId v;

  /// Builds a normalized edge from any endpoint order. a != b required.
  static Edge Of(NodeId a, NodeId b) {
    return a < b ? Edge{a, b} : Edge{b, a};
  }

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

/// Hash functor for Edge.
struct EdgeHash {
  std::size_t operator()(const Edge& e) const {
    return static_cast<std::size_t>(HashCombine(SplitMix64(e.u), e.v));
  }
};

/// Undirected dynamic graph. Self-loops and parallel edges are rejected.
class DynamicGraph {
 public:
  DynamicGraph() = default;

  /// Adds an isolated node. Returns false if it already exists.
  bool AddNode(NodeId n);

  /// Removes `n` and all incident edges. Returns false if absent.
  bool RemoveNode(NodeId n);

  /// Adds edge {a, b}, creating missing endpoints. Returns false if the edge
  /// already exists or a == b.
  bool AddEdge(NodeId a, NodeId b);

  /// Removes edge {a, b}; endpoints stay even if isolated. Returns false if
  /// the edge does not exist.
  bool RemoveEdge(NodeId a, NodeId b);

  /// True if node exists.
  bool HasNode(NodeId n) const { return adjacency_.count(n) > 0; }

  /// True if edge {a, b} exists.
  bool HasEdge(NodeId a, NodeId b) const;

  /// Sorted neighbors of `n`. Node must exist.
  const std::vector<NodeId>& Neighbors(NodeId n) const;

  /// Degree of `n`; 0 if the node does not exist.
  std::size_t Degree(NodeId n) const;

  /// Nodes adjacent to both `a` and `b` (sorted-merge intersection).
  std::vector<NodeId> CommonNeighbors(NodeId a, NodeId b) const;

  /// True if `a` and `b` share at least one neighbor.
  bool HaveCommonNeighbor(NodeId a, NodeId b) const;

  std::size_t node_count() const { return adjacency_.size(); }
  std::size_t edge_count() const { return edge_count_; }

  /// Snapshot of all node ids (unordered).
  std::vector<NodeId> Nodes() const;

  /// Snapshot of all normalized edges (unordered).
  std::vector<Edge> Edges() const;

  /// Removes everything.
  void Clear();

  /// Serializes the graph: node ids then normalized edges, both sorted, so
  /// equal graphs produce identical bytes (snapshot determinism).
  void Save(BinaryWriter& out) const;

  /// Replaces this graph with Save()'s encoding. Returns false on malformed
  /// input (duplicate edge, self-loop, overrun); the graph is cleared then.
  bool Restore(BinaryReader& in);

 private:
  std::unordered_map<NodeId, std::vector<NodeId>> adjacency_;
  std::size_t edge_count_ = 0;
};

}  // namespace scprt::graph

#endif  // SCPRT_GRAPH_GRAPH_H_
