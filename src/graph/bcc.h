// Biconnected components and articulation points (Hopcroft-Tarjan),
// iterative so deep graphs cannot overflow the stack.
//
// Used by (1) the offline baseline of Section 7.3 (Bansal et al.-style BC
// clustering recomputed per quantum) and (2) the test suite's verification
// of Theorem 2 (clusters discovered via SCP are biconnected).

#ifndef SCPRT_GRAPH_BCC_H_
#define SCPRT_GRAPH_BCC_H_

#include <vector>

#include "graph/graph.h"

namespace scprt::graph {

/// Result of a biconnected decomposition.
struct BccResult {
  /// Edge sets of the biconnected components. Every graph edge appears in
  /// exactly one component; bridge edges form components of size 1.
  std::vector<std::vector<Edge>> components;
  /// Articulation points (cut vertices), sorted ascending.
  std::vector<NodeId> articulation_points;
};

/// Decomposes `g` into biconnected components.
BccResult BiconnectedComponents(const DynamicGraph& g);

/// True if the subgraph induced by `edges` is biconnected (one biconnected
/// component spanning all its nodes, no articulation point). Singleton edge
/// sets are not biconnected (a K2 has no two independent paths).
bool IsBiconnectedEdgeSet(const std::vector<Edge>& edges);

}  // namespace scprt::graph

#endif  // SCPRT_GRAPH_BCC_H_
