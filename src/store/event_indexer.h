// Glue between the detection pipeline and the event store: an
// EventIndexer is the ClusterSink that turns every newly reported cluster
// into an LshIndex insert, committing on a configurable cadence.
//
// With commit_every == 1 (the default) every insert is committed before
// the detector's ProcessQuantum returns — so any event covered by a
// durability fence taken at the quantum boundary is already query-visible
// and crash-durable in the index. Larger cadences batch the fsync cost;
// checkpoint replay after a crash re-offers the lost tail and the index's
// (cluster, quantum) idempotency absorbs the overlap either way.
//
// OnCluster cannot return an error (the detector's hot path does not
// branch on its sink), so failures latch into last_error() and subsequent
// clusters are dropped until the caller inspects and clears it.

#ifndef SCPRT_STORE_EVENT_INDEXER_H_
#define SCPRT_STORE_EVENT_INDEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "detect/cluster_sink.h"
#include "durability/error.h"
#include "store/lsh_index.h"

namespace scprt::store {

class EventIndexer : public detect::ClusterSink {
 public:
  /// `index` must outlive the indexer. `commit_every` == 0 means "never
  /// commit automatically" (the caller owns Commit timing; Flush() still
  /// works).
  explicit EventIndexer(LshIndex* index, std::uint32_t commit_every = 1);

  /// ClusterSink: insert (and maybe commit) one reported cluster. Keywords
  /// with no spelling are indexed under "#<id>" so a dictionary-less trace
  /// still round-trips through the store.
  void OnCluster(const detect::ReportedCluster& cluster) override;

  /// Commits whatever is pending. No-op when nothing is.
  durability::Error Flush();

  /// First error since the last clear (sticky; empty when healthy).
  const durability::Error& last_error() const { return last_error_; }
  void clear_error() { last_error_ = {}; }

  /// Clusters successfully handed to the index.
  std::uint64_t indexed() const { return indexed_; }

 private:
  LshIndex* index_;
  std::uint32_t commit_every_;
  std::uint32_t pending_ = 0;
  std::uint64_t indexed_ = 0;
  durability::Error last_error_;
};

}  // namespace scprt::store

#endif  // SCPRT_STORE_EVENT_INDEXER_H_
