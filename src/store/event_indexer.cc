#include "store/event_indexer.h"

namespace scprt::store {

EventIndexer::EventIndexer(LshIndex* index, std::uint32_t commit_every)
    : index_(index), commit_every_(commit_every) {}

void EventIndexer::OnCluster(const detect::ReportedCluster& cluster) {
  if (!last_error_.ok()) return;  // latched: drop until the caller clears
  const detect::EventSnapshot& snap = cluster.snapshot;
  std::vector<std::string> keywords;
  if (cluster.spellings.size() == snap.keywords.size()) {
    keywords = cluster.spellings;
  }
  // Fill gaps (no dictionary, or an id past it) with a stable placeholder
  // so the signature still keys off the full member set.
  keywords.resize(snap.keywords.size());
  for (std::size_t i = 0; i < keywords.size(); ++i) {
    if (keywords[i].empty()) {
      keywords[i] = "#" + std::to_string(snap.keywords[i]);
    }
  }
  durability::Error error = index_->Insert(
      snap.cluster_id, snap.quantum, snap.born_at, snap.rank,
      snap.support, keywords, cluster.user_sketch, cluster.sketch_p);
  if (!error.ok()) {
    last_error_ = std::move(error);
    return;
  }
  ++indexed_;
  ++pending_;
  if (commit_every_ > 0 && pending_ >= commit_every_) {
    if (durability::Error e = index_->Commit(); !e.ok()) {
      last_error_ = std::move(e);
      return;
    }
    pending_ = 0;
  }
}

durability::Error EventIndexer::Flush() {
  if (!last_error_.ok()) return last_error_;
  if (pending_ == 0) return {};
  durability::Error error = index_->Commit();
  if (error.ok()) {
    pending_ = 0;
  } else {
    last_error_ = error;
  }
  return error;
}

}  // namespace scprt::store
