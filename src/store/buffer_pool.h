// A bounded LRU buffer pool over one PageFile: at most `frames` pages are
// resident at a time; fetching a non-resident page evicts the
// least-recently-used *unpinned* frame (writing it back first when dirty).
//
// Invariants (tests/store_test.cc drives them with randomized op
// sequences):
//   * a pinned page is never evicted — a PageHandle's payload pointer
//     stays valid until the handle unpins;
//   * a dirty page is written back before its frame is reused, and
//     FlushAll() leaves no dirty frame behind;
//   * resident frames never exceed the configured bound.
//
// When every frame is pinned and a new page must come in, Fetch fails
// with ErrorCode::kBusy — the pool refuses to break the pin contract.
//
// Not internally synchronized: the owner (LshIndex) serializes access.
// Page traffic is counted into obs ("store.page_read", "store.page_write",
// "store.page_evict").

#ifndef SCPRT_STORE_BUFFER_POOL_H_
#define SCPRT_STORE_BUFFER_POOL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "durability/error.h"
#include "obs/registry.h"
#include "store/page_file.h"

namespace scprt::store {

class BufferPool;

/// RAII pin on one resident page. While alive, the payload pointer is
/// stable and the page cannot be evicted. Movable, not copyable.
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(PageHandle&& other) noexcept { *this = std::move(other); }
  PageHandle& operator=(PageHandle&& other) noexcept;
  ~PageHandle() { Release(); }
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;

  bool valid() const { return pool_ != nullptr; }
  std::uint32_t page_no() const { return page_no_; }

  /// The page payload (kPagePayloadSize bytes).
  char* data();
  const char* data() const;

  /// Marks the page dirty: it will be written back before eviction or at
  /// the next FlushAll.
  void MarkDirty();

  /// Unpins early (idempotent; the destructor calls it too).
  void Release();

 private:
  friend class BufferPool;
  PageHandle(BufferPool* pool, std::size_t frame, std::uint32_t page_no)
      : pool_(pool), frame_(frame), page_no_(page_no) {}

  BufferPool* pool_ = nullptr;
  std::size_t frame_ = 0;
  std::uint32_t page_no_ = 0;
};

/// The pool. `frames` >= 1 bounds residency.
class BufferPool {
 public:
  BufferPool(PageFile* file, std::size_t frames);

  /// Pins page `page_no`, reading it from the file when not resident.
  /// Errors: whatever ReadPage surfaces (kIo/kCorrupt), or kBusy when no
  /// frame can be freed.
  durability::Error Fetch(std::uint32_t page_no, PageHandle* handle);

  /// Allocates a fresh page in the file and pins it zero-filled and dirty
  /// (no read — the page has no prior contents worth seeing).
  durability::Error NewPage(PageHandle* handle);

  /// Writes every dirty frame back. Pins are unaffected.
  durability::Error FlushAll();

  /// Drops every unpinned clean frame (test hook for re-read paths).
  void DropClean();

  std::size_t frames() const { return frames_.size(); }
  std::size_t resident() const { return page_to_frame_.size(); }
  std::size_t pinned() const;
  std::size_t dirty() const;
  PageFile* file() { return file_; }

 private:
  friend class PageHandle;

  struct Frame {
    std::uint32_t page_no = 0;
    bool in_use = false;
    bool dirty = false;
    std::uint32_t pins = 0;
    std::uint64_t last_use = 0;  // LRU clock tick
    std::unique_ptr<char[]> payload;
  };

  /// Finds a free frame, evicting the LRU unpinned one if needed.
  /// kBusy when everything is pinned.
  durability::Error AcquireFrame(std::size_t* out);
  durability::Error WriteBack(Frame& frame);
  void Unpin(std::size_t frame);

  PageFile* file_;
  std::vector<Frame> frames_;
  std::unordered_map<std::uint32_t, std::size_t> page_to_frame_;
  std::uint64_t clock_ = 0;
  obs::Counter* reads_;
  obs::Counter* writes_;
  obs::Counter* evictions_;
};

}  // namespace scprt::store

#endif  // SCPRT_STORE_BUFFER_POOL_H_
