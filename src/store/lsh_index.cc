#include "store/lsh_index.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <unordered_set>

#include "common/binary_io.h"
#include "common/check.h"
#include "common/hash.h"
#include "durability/manifest.h"
#include "durability/posix_file.h"

namespace scprt::store {

namespace {

using durability::Error;
using durability::ErrorCode;
using durability::MakeError;

constexpr char kMetaMagic[8] = {'S', 'C', 'P', 'R', 'T', 'I', 'D', 'X'};
constexpr std::uint32_t kMetaVersion = 1;
constexpr char kMetaName[] = "STOREMETA";

// Directory pages: packed u32 head-page slots.
constexpr std::size_t kDirSlotsPerPage = kPagePayloadSize / 4;

// Bucket and event pages share an 8-byte payload header:
//   [u32 next_page][u16 used][u16 reserved]
// `used` counts postings on bucket pages and bytes (including this
// header) on event pages.
constexpr std::size_t kChainHeaderSize = 8;
constexpr std::size_t kPostingSize = 18;  // u64 key, u32 event, u32 page, u16 off
constexpr std::size_t kPostingsPerPage =
    (kPagePayloadSize - kChainHeaderSize) / kPostingSize;

// Band-key and per-function seed salts (arbitrary odd constants).
constexpr std::uint64_t kFunctionSalt = 0x9e3779b97f4a7c15ULL;
constexpr std::uint64_t kBandSalt = 0xbf58476d1ce4e5b9ULL;

// Chain-walk bound: a corrupted next pointer cannot send a query on an
// unbounded tour of the file.
constexpr std::size_t kMaxChainPages = 1u << 20;

std::uint16_t ReadU16(const char* p) {
  return static_cast<std::uint16_t>(
      static_cast<std::uint8_t>(p[0]) |
      (static_cast<std::uint16_t>(static_cast<std::uint8_t>(p[1])) << 8));
}

std::uint32_t ReadU32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t ReadU64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(p[i]))
         << (8 * i);
  }
  return v;
}

void WriteU16(char* p, std::uint16_t v) {
  p[0] = static_cast<char>(v);
  p[1] = static_cast<char>(v >> 8);
}

void WriteU32(char* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<char>(v >> (8 * i));
}

void WriteU64(char* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<char>(v >> (8 * i));
}

std::string NormalizeKeyword(const std::string& keyword) {
  return keyword.size() <= kMaxSpellingBytes
             ? keyword
             : keyword.substr(0, kMaxSpellingBytes);
}

std::string EncodeEventPayload(const StoredEvent& event) {
  BinaryWriter out;
  out.U32(event.event_id);
  out.U64(event.cluster_id);
  out.I64(event.quantum);
  out.I64(event.born_at);
  out.F64(event.rank);
  out.U64(event.support);
  out.U32(static_cast<std::uint32_t>(event.keywords.size()));
  for (const std::string& keyword : event.keywords) {
    out.U32(static_cast<std::uint32_t>(keyword.size()));
    out.Bytes(keyword.data(), keyword.size());
  }
  out.U32(static_cast<std::uint32_t>(event.signature.size()));
  for (std::uint64_t value : event.signature) out.U64(value);
  out.U64(event.sketch_p);
  out.U32(static_cast<std::uint32_t>(event.user_sketch.size()));
  for (const akg::SketchEntry& entry : event.user_sketch) {
    out.U64(entry.key);
    out.F64(entry.score);
  }
  return out.TakeData();
}

bool DecodeEventPayload(std::string_view payload, StoredEvent* event) {
  BinaryReader in(payload);
  event->event_id = in.U32();
  event->cluster_id = in.U64();
  event->quantum = in.I64();
  event->born_at = in.I64();
  event->rank = in.F64();
  event->support = in.U64();
  const std::uint32_t kw_count = in.U32();
  if (!in.CheckLength(kw_count, 4)) return false;
  event->keywords.clear();
  event->keywords.reserve(kw_count);
  for (std::uint32_t i = 0; i < kw_count; ++i) {
    const std::uint32_t len = in.U32();
    if (!in.CheckLength(len, 1)) return false;
    std::string keyword(len, '\0');
    if (!in.ReadBytes(keyword.data(), len)) return false;
    event->keywords.push_back(std::move(keyword));
  }
  const std::uint32_t sig_count = in.U32();
  if (!in.CheckLength(sig_count, 8)) return false;
  event->signature.clear();
  event->signature.reserve(sig_count);
  for (std::uint32_t i = 0; i < sig_count; ++i) {
    event->signature.push_back(in.U64());
  }
  event->sketch_p = in.U64();
  const std::uint32_t sketch_count = in.U32();
  if (!in.CheckLength(sketch_count, 16)) return false;
  event->user_sketch.clear();
  event->user_sketch.reserve(sketch_count);
  for (std::uint32_t i = 0; i < sketch_count; ++i) {
    akg::SketchEntry entry;
    entry.key = in.U64();
    entry.score = in.F64();
    event->user_sketch.push_back(entry);
  }
  return in.ok();
}

std::uint32_t RoundUpPow2(std::uint32_t v) {
  std::uint32_t p = 1;
  while (p < v && p < (1u << 30)) p <<= 1;
  return p;
}

}  // namespace

std::string LshIndex::MetaPath() const { return directory_ + "/" + kMetaName; }

std::uint32_t LshIndex::DirectoryPages() const {
  const std::uint64_t slots =
      static_cast<std::uint64_t>(bands_) * directory_slots_;
  return static_cast<std::uint32_t>((slots + kDirSlotsPerPage - 1) /
                                    kDirSlotsPerPage);
}

akg::MinHashSignature LshIndex::SketchKeywords(
    const std::vector<std::string>& keywords) const {
  const std::size_t k = static_cast<std::size_t>(bands_) * rows_;
  akg::MinHashSignature signature(k, ~std::uint64_t{0});
  for (const std::string& raw : keywords) {
    const std::string keyword = NormalizeKeyword(raw);
    for (std::size_t i = 0; i < k; ++i) {
      const std::uint64_t fn_seed = SplitMix64(seed_ ^ (kFunctionSalt * (i + 1)));
      const std::uint64_t h = HashBytes(keyword, fn_seed);
      if (h < signature[i]) signature[i] = h;
    }
  }
  return signature;
}

std::uint64_t LshIndex::BandKey(const akg::MinHashSignature& signature,
                                std::uint32_t band) const {
  std::uint64_t h = SplitMix64(seed_ ^ (kBandSalt * (band + 1)));
  for (std::uint32_t r = 0; r < rows_; ++r) {
    h = SplitMix64(h ^ signature[static_cast<std::size_t>(band) * rows_ + r]);
  }
  return h;
}

std::unique_ptr<LshIndex> LshIndex::Create(const std::string& directory,
                                           const LshOptions& options,
                                           Error* error) {
  auto index = std::unique_ptr<LshIndex>(new LshIndex());
  index->directory_ = directory;
  index->bands_ = std::max<std::uint32_t>(1, options.bands);
  index->rows_ = std::max<std::uint32_t>(1, options.rows);
  if (index->bands_ * index->rows_ > 64) {
    if (error != nullptr) {
      *error = MakeError(ErrorCode::kStateMismatch,
                         "lsh index: bands * rows must be <= 64");
    }
    return nullptr;
  }
  index->directory_slots_ =
      RoundUpPow2(std::max<std::uint32_t>(64, options.directory_slots));
  index->seed_ = options.seed;
  index->sync_ = options.sync;
  index->file_number_ = 1;
  index->inserts_ =
      obs::Registry::Default().GetCounter("store.events_indexed");
  index->query_latency_ = obs::Registry::Default().GetHistogram(
      "store.query_latency", "ns");

  const std::string path =
      directory + "/" + durability::IndexFileName(index->file_number_);
  index->file_ = PageFile::Create(path, error);
  if (index->file_ == nullptr) return nullptr;
  index->pool_ = std::make_unique<BufferPool>(
      index->file_.get(), std::max<std::size_t>(1, options.pool_frames));
  if (Error e = index->InitDirectory(); !e.ok()) {
    if (error != nullptr) *error = std::move(e);
    return nullptr;
  }
  if (Error e = index->Commit(); !e.ok()) {
    if (error != nullptr) *error = std::move(e);
    return nullptr;
  }
  return index;
}

std::unique_ptr<LshIndex> LshIndex::Open(const std::string& directory,
                                         const LshOptions& options,
                                         Error* error) {
  return OpenImpl(directory, options, /*read_only=*/false, error);
}

std::unique_ptr<LshIndex> LshIndex::OpenReadOnly(const std::string& directory,
                                                 std::size_t pool_frames,
                                                 Error* error) {
  LshOptions options;
  options.pool_frames = pool_frames;
  return OpenImpl(directory, options, /*read_only=*/true, error);
}

std::unique_ptr<LshIndex> LshIndex::OpenImpl(const std::string& directory,
                                             const LshOptions& options,
                                             bool read_only, Error* error) {
  auto fail = [error](Error e) -> std::unique_ptr<LshIndex> {
    if (error != nullptr) *error = std::move(e);
    return nullptr;
  };

  std::string meta;
  if (!durability::ReadFileToString(directory + "/" + kMetaName, meta)) {
    return fail(MakeError(ErrorCode::kIo,
                          directory + ": no " + kMetaName + " record"));
  }
  if (meta.size() < 24 ||
      std::memcmp(meta.data(), kMetaMagic, sizeof(kMetaMagic)) != 0) {
    return fail(
        MakeError(ErrorCode::kBadMagic, directory + ": bad store meta magic"));
  }
  BinaryReader frame(std::string_view(meta).substr(8));
  const std::uint32_t version = frame.U32();
  if (version != kMetaVersion) {
    return fail(MakeError(ErrorCode::kVersionSkew,
                          directory + ": unsupported store meta version"));
  }
  const std::uint64_t payload_len = frame.U64();
  const std::uint32_t stored_crc = frame.U32();
  if (!frame.ok() || payload_len != frame.remaining()) {
    return fail(
        MakeError(ErrorCode::kCorrupt, directory + ": truncated store meta"));
  }
  const std::string_view payload =
      std::string_view(meta).substr(meta.size() - payload_len);
  if (Crc32(payload) != stored_crc) {
    return fail(
        MakeError(ErrorCode::kCorrupt, directory + ": store meta CRC"));
  }

  auto index = std::unique_ptr<LshIndex>(new LshIndex());
  index->directory_ = directory;
  index->read_only_ = read_only;
  index->sync_ = options.sync;
  BinaryReader in(payload);
  index->bands_ = in.U32();
  index->rows_ = in.U32();
  index->directory_slots_ = in.U32();
  index->seed_ = in.U64();
  index->file_number_ = in.U64();
  index->committed_pages_ = in.U32();
  index->committed_events_ = in.U32();
  index->event_head_page_ = in.U32();
  index->event_tail_page_ = in.U32();
  index->event_tail_offset_ = static_cast<std::uint16_t>(in.U32());
  if (!in.ok() || index->bands_ == 0 || index->rows_ == 0 ||
      index->directory_slots_ == 0) {
    return fail(
        MakeError(ErrorCode::kCorrupt, directory + ": malformed store meta"));
  }
  index->next_event_id_ = index->committed_events_;
  index->inserts_ =
      obs::Registry::Default().GetCounter("store.events_indexed");
  index->query_latency_ = obs::Registry::Default().GetHistogram(
      "store.query_latency", "ns");

  const std::string path =
      directory + "/" + durability::IndexFileName(index->file_number_);
  Error open_error;
  index->file_ = PageFile::Open(path, read_only, &open_error);
  if (index->file_ == nullptr) return fail(std::move(open_error));
  const std::uint32_t physical_pages = index->file_->page_count();
  if (physical_pages < index->committed_pages_) {
    return fail(MakeError(ErrorCode::kCorrupt,
                          path + ": shorter than the committed page count"));
  }
  index->pool_ = std::make_unique<BufferPool>(
      index->file_.get(), std::max<std::size_t>(1, options.pool_frames));

  if (read_only) {
    index->file_->set_page_count(physical_pages);
    return index;
  }

  // Writer recovery: re-base the allocator at the committed watermark so
  // the uncommitted physical tail is overwritten, clamp the event tail,
  // and — when uncommitted pages exist — drop the bucket directory and
  // rebuild it from the committed event chain (stale directory pointers
  // may reference pages the allocator is about to hand out again).
  index->file_->set_page_count(index->committed_pages_);
  if (index->event_tail_page_ != 0) {
    PageHandle tail;
    if (Error e = index->pool_->Fetch(index->event_tail_page_, &tail);
        !e.ok()) {
      return fail(std::move(e));
    }
    WriteU32(tail.data(), 0);  // next: the chain ends at the committed tail
    WriteU16(tail.data() + 4, index->event_tail_offset_);
    tail.MarkDirty();
  }
  if (physical_pages > index->committed_pages_) {
    if (Error e = index->RebuildDirectory(); !e.ok()) {
      return fail(std::move(e));
    }
  }
  Error scan_error = index->ScanChain(
      [&index](const StoredEvent& event, std::uint32_t, std::uint16_t) {
        index->seen_.insert({event.cluster_id, event.quantum});
      });
  if (!scan_error.ok()) return fail(std::move(scan_error));
  return index;
}

Error LshIndex::InitDirectory() {
  const std::uint32_t pages = DirectoryPages();
  for (std::uint32_t i = 0; i < pages; ++i) {
    PageHandle handle;
    if (Error e = pool_->NewPage(&handle); !e.ok()) return e;
    // NewPage zero-fills: every slot starts empty (head page 0).
  }
  return {};
}

Error LshIndex::RebuildDirectory() {
  const std::uint32_t pages = DirectoryPages();
  for (std::uint32_t i = 0; i < pages; ++i) {
    PageHandle handle;
    if (Error e = pool_->Fetch(1 + i, &handle); !e.ok()) return e;
    std::memset(handle.data(), 0, kPagePayloadSize);
    handle.MarkDirty();
  }
  return ScanChain([this](const StoredEvent& event, std::uint32_t page,
                          std::uint16_t offset) {
    for (std::uint32_t band = 0; band < bands_; ++band) {
      Posting posting;
      posting.band_key = BandKey(event.signature, band);
      posting.event_id = event.event_id;
      posting.page = page;
      posting.offset = offset;
      // Rebuild is all-or-nothing: an append failure here surfaces on the
      // next page operation; the chain scan itself already validated the
      // committed data.
      (void)AppendPosting(band, posting);
    }
  });
}

Error LshIndex::ReadDirectorySlot(std::uint32_t band, std::uint64_t key,
                                  std::uint32_t* head) {
  const std::uint64_t slot =
      static_cast<std::uint64_t>(band) * directory_slots_ +
      (key & (directory_slots_ - 1));
  PageHandle handle;
  if (Error e = pool_->Fetch(
          1 + static_cast<std::uint32_t>(slot / kDirSlotsPerPage), &handle);
      !e.ok()) {
    return e;
  }
  *head = ReadU32(handle.data() + (slot % kDirSlotsPerPage) * 4);
  return {};
}

Error LshIndex::WriteDirectorySlot(std::uint32_t band, std::uint64_t key,
                                   std::uint32_t head) {
  const std::uint64_t slot =
      static_cast<std::uint64_t>(band) * directory_slots_ +
      (key & (directory_slots_ - 1));
  PageHandle handle;
  if (Error e = pool_->Fetch(
          1 + static_cast<std::uint32_t>(slot / kDirSlotsPerPage), &handle);
      !e.ok()) {
    return e;
  }
  WriteU32(handle.data() + (slot % kDirSlotsPerPage) * 4, head);
  handle.MarkDirty();
  return {};
}

Error LshIndex::AppendEventRecord(const std::string& payload,
                                  std::uint32_t* page, std::uint16_t* offset) {
  const std::size_t total = 8 + payload.size();  // u32 len + u32 crc + body
  if (total > kPagePayloadSize - kChainHeaderSize) {
    return MakeError(ErrorCode::kStateMismatch,
                     "event record too large for one page");
  }
  PageHandle tail;
  if (event_head_page_ == 0) {
    if (Error e = pool_->NewPage(&tail); !e.ok()) return e;
    WriteU16(tail.data() + 4, kChainHeaderSize);
    tail.MarkDirty();
    event_head_page_ = event_tail_page_ = tail.page_no();
  } else {
    if (Error e = pool_->Fetch(event_tail_page_, &tail); !e.ok()) return e;
  }
  std::uint16_t used = ReadU16(tail.data() + 4);
  if (used + total > kPagePayloadSize) {
    PageHandle next;
    if (Error e = pool_->NewPage(&next); !e.ok()) return e;
    WriteU16(next.data() + 4, kChainHeaderSize);
    next.MarkDirty();
    WriteU32(tail.data(), next.page_no());
    tail.MarkDirty();
    event_tail_page_ = next.page_no();
    tail = std::move(next);
    used = kChainHeaderSize;
  }
  char* at = tail.data() + used;
  WriteU32(at, static_cast<std::uint32_t>(payload.size()));
  WriteU32(at + 4, Crc32(payload));
  std::memcpy(at + 8, payload.data(), payload.size());
  WriteU16(tail.data() + 4, static_cast<std::uint16_t>(used + total));
  tail.MarkDirty();
  *page = event_tail_page_;
  *offset = used;
  return {};
}

Error LshIndex::AppendPosting(std::uint32_t band, const Posting& posting) {
  // Head insertion: postings go into the chain's head page until it fills,
  // then a fresh page is prepended — the directory slot always names the
  // only page with free space.
  std::uint32_t head = 0;
  if (Error e = ReadDirectorySlot(band, posting.band_key, &head); !e.ok()) {
    return e;
  }
  PageHandle handle;
  if (head != 0) {
    if (Error e = pool_->Fetch(head, &handle); !e.ok()) return e;
    const std::uint16_t used = ReadU16(handle.data() + 4);
    if (used < kPostingsPerPage) {
      char* at = handle.data() + kChainHeaderSize + used * kPostingSize;
      WriteU64(at, posting.band_key);
      WriteU32(at + 8, posting.event_id);
      WriteU32(at + 12, posting.page);
      WriteU16(at + 16, posting.offset);
      WriteU16(handle.data() + 4, static_cast<std::uint16_t>(used + 1));
      handle.MarkDirty();
      return {};
    }
    handle.Release();
  }
  PageHandle fresh;
  if (Error e = pool_->NewPage(&fresh); !e.ok()) return e;
  WriteU32(fresh.data(), head);  // next: the full (or absent) old head
  WriteU16(fresh.data() + 4, 1);
  char* at = fresh.data() + kChainHeaderSize;
  WriteU64(at, posting.band_key);
  WriteU32(at + 8, posting.event_id);
  WriteU32(at + 12, posting.page);
  WriteU16(at + 16, posting.offset);
  fresh.MarkDirty();
  const std::uint32_t fresh_page = fresh.page_no();
  fresh.Release();
  return WriteDirectorySlot(band, posting.band_key, fresh_page);
}

Error LshIndex::CollectBand(std::uint32_t band, std::uint64_t key,
                            std::vector<Posting>* postings) {
  std::uint32_t page = 0;
  if (Error e = ReadDirectorySlot(band, key, &page); !e.ok()) return e;
  std::unordered_set<std::uint32_t> visited;
  std::size_t steps = 0;
  while (page != 0 && page < file_->page_count() &&
         visited.insert(page).second && ++steps <= kMaxChainPages) {
    PageHandle handle;
    if (Error e = pool_->Fetch(page, &handle); !e.ok()) {
      // A stale pointer into a torn page is a miss, not a query failure.
      if (e.code == ErrorCode::kCorrupt) break;
      return e;
    }
    const std::uint32_t next = ReadU32(handle.data());
    std::size_t used = ReadU16(handle.data() + 4);
    if (used > kPostingsPerPage) used = kPostingsPerPage;
    for (std::size_t i = 0; i < used; ++i) {
      const char* at =
          handle.data() + kChainHeaderSize + i * kPostingSize;
      Posting posting;
      posting.band_key = ReadU64(at);
      posting.event_id = ReadU32(at + 8);
      posting.page = ReadU32(at + 12);
      posting.offset = ReadU16(at + 16);
      if (posting.band_key == key && posting.event_id < committed_events_) {
        postings->push_back(posting);
      }
    }
    page = next;
  }
  return {};
}

Error LshIndex::LoadRecord(std::uint32_t page, std::uint16_t offset,
                           std::uint32_t expect_event_id, StoredEvent* event,
                           bool* valid) {
  *valid = false;
  if (page == 0 || page >= file_->page_count() ||
      offset < kChainHeaderSize ||
      offset + 8 > kPagePayloadSize) {
    return {};
  }
  PageHandle handle;
  if (Error e = pool_->Fetch(page, &handle); !e.ok()) {
    if (e.code == ErrorCode::kCorrupt) return {};  // stale candidate
    return e;
  }
  const char* at = handle.data() + offset;
  const std::uint32_t len = ReadU32(at);
  if (offset + 8 + len > kPagePayloadSize) return {};
  const std::uint32_t crc = ReadU32(at + 4);
  const std::string_view payload(at + 8, len);
  if (Crc32(payload) != crc) return {};
  StoredEvent decoded;
  if (!DecodeEventPayload(payload, &decoded)) return {};
  if (decoded.event_id != expect_event_id) return {};
  *event = std::move(decoded);
  *valid = true;
  return {};
}

Error LshIndex::ScanChain(
    const std::function<void(const StoredEvent&, std::uint32_t page,
                             std::uint16_t offset)>& fn) {
  if (event_head_page_ == 0) return {};
  std::uint32_t page = event_head_page_;
  std::unordered_set<std::uint32_t> visited;
  std::size_t steps = 0;
  while (page != 0) {
    if (page >= file_->page_count() || !visited.insert(page).second ||
        ++steps > kMaxChainPages) {
      return MakeError(ErrorCode::kCorrupt,
                       "event chain walks outside the committed file");
    }
    PageHandle handle;
    if (Error e = pool_->Fetch(page, &handle); !e.ok()) return e;
    const bool is_tail = page == event_tail_page_;
    std::size_t limit = is_tail ? event_tail_offset_
                                : ReadU16(handle.data() + 4);
    if (limit > kPagePayloadSize) limit = kPagePayloadSize;
    std::size_t offset = kChainHeaderSize;
    while (offset + 8 <= limit) {
      const char* at = handle.data() + offset;
      const std::uint32_t len = ReadU32(at);
      if (offset + 8 + len > limit) {
        return MakeError(ErrorCode::kCorrupt,
                         "event record overruns its page");
      }
      const std::string_view payload(at + 8, len);
      if (Crc32(payload) != ReadU32(at + 4)) {
        return MakeError(ErrorCode::kCorrupt, "event record CRC mismatch");
      }
      StoredEvent event;
      if (!DecodeEventPayload(payload, &event)) {
        return MakeError(ErrorCode::kCorrupt, "event record malformed");
      }
      fn(event, page, static_cast<std::uint16_t>(offset));
      offset += 8 + len;
    }
    if (is_tail) break;
    page = ReadU32(handle.data());
  }
  return {};
}

Error LshIndex::Insert(std::uint64_t cluster_id, std::int64_t quantum,
                       std::int64_t born_at, double rank,
                       std::uint64_t support,
                       const std::vector<std::string>& keywords,
                       const akg::WeightedSketch& user_sketch,
                       std::uint64_t sketch_p) {
  std::lock_guard<std::mutex> lock(mu_);
  if (read_only_) {
    return MakeError(ErrorCode::kIo, "lsh index: read-only handle");
  }
  if (!seen_.insert({cluster_id, quantum}).second) return {};

  StoredEvent event;
  event.event_id = next_event_id_;
  event.cluster_id = cluster_id;
  event.quantum = quantum;
  event.born_at = born_at;
  event.rank = rank;
  event.support = support;
  event.keywords.reserve(std::min(keywords.size(), kMaxRecordKeywords));
  for (const std::string& keyword : keywords) {
    if (event.keywords.size() >= kMaxRecordKeywords) break;
    event.keywords.push_back(NormalizeKeyword(keyword));
  }
  event.signature = SketchKeywords(event.keywords);
  event.sketch_p = sketch_p;
  event.user_sketch = user_sketch;
  if (event.user_sketch.size() > 64) event.user_sketch.resize(64);

  std::uint32_t page = 0;
  std::uint16_t offset = 0;
  if (Error e = AppendEventRecord(EncodeEventPayload(event), &page, &offset);
      !e.ok()) {
    return e;
  }
  for (std::uint32_t band = 0; band < bands_; ++band) {
    Posting posting;
    posting.band_key = BandKey(event.signature, band);
    posting.event_id = event.event_id;
    posting.page = page;
    posting.offset = offset;
    if (Error e = AppendPosting(band, posting); !e.ok()) return e;
  }
  ++next_event_id_;
  inserts_->Increment();
  return {};
}

Error LshIndex::Commit() {
  std::lock_guard<std::mutex> lock(mu_);
  if (read_only_) {
    return MakeError(ErrorCode::kIo, "lsh index: read-only handle");
  }
  if (Error e = pool_->FlushAll(); !e.ok()) return e;
  if (sync_ && !file_->Sync()) {
    return MakeError(ErrorCode::kSyncFailed, file_->path());
  }
  committed_pages_ = file_->page_count();
  committed_events_ = next_event_id_;
  return PublishMeta();
}

Error LshIndex::PublishMeta() {
  // Re-read the live tail's used count: that is the committed tail offset.
  std::uint16_t tail_offset = 0;
  if (event_tail_page_ != 0) {
    PageHandle tail;
    if (Error e = pool_->Fetch(event_tail_page_, &tail); !e.ok()) return e;
    tail_offset = ReadU16(tail.data() + 4);
  }
  event_tail_offset_ = tail_offset;

  BinaryWriter payload;
  payload.U32(bands_);
  payload.U32(rows_);
  payload.U32(directory_slots_);
  payload.U64(seed_);
  payload.U64(file_number_);
  payload.U32(committed_pages_);
  payload.U32(committed_events_);
  payload.U32(event_head_page_);
  payload.U32(event_tail_page_);
  payload.U32(event_tail_offset_);
  const std::string body = payload.TakeData();

  BinaryWriter frame;
  frame.Bytes(kMetaMagic, sizeof(kMetaMagic));
  frame.U32(kMetaVersion);
  frame.U64(body.size());
  frame.U32(Crc32(body));
  frame.Bytes(body.data(), body.size());
  return durability::WriteFileAtomic(MetaPath(), frame.data(), sync_);
}

Error LshIndex::Query(const std::vector<std::string>& keywords,
                      std::size_t top_k, std::vector<QueryResult>* results) {
  std::lock_guard<std::mutex> lock(mu_);
  obs::ScopedHistogramTimer timer(query_latency_);
  results->clear();
  const akg::MinHashSignature signature = SketchKeywords(keywords);
  const std::size_t k = signature.size();

  // Candidate locations per event id: a stale posting can coexist with the
  // real one for the same id, so each location is tried until one record
  // validates.
  std::unordered_map<std::uint32_t,
                     std::vector<std::pair<std::uint32_t, std::uint16_t>>>
      candidates;
  std::vector<Posting> postings;
  for (std::uint32_t band = 0; band < bands_; ++band) {
    postings.clear();
    if (Error e = CollectBand(band, BandKey(signature, band), &postings);
        !e.ok()) {
      return e;
    }
    for (const Posting& posting : postings) {
      auto& locations = candidates[posting.event_id];
      const std::pair<std::uint32_t, std::uint16_t> location{posting.page,
                                                             posting.offset};
      if (std::find(locations.begin(), locations.end(), location) ==
          locations.end()) {
        locations.push_back(location);
      }
    }
  }

  for (const auto& [event_id, locations] : candidates) {
    StoredEvent event;
    bool valid = false;
    for (const auto& [page, offset] : locations) {
      if (Error e = LoadRecord(page, offset, event_id, &event, &valid);
          !e.ok()) {
        return e;
      }
      if (valid) break;
    }
    if (!valid) continue;
    QueryResult result;
    std::size_t matches = 0;
    const std::size_t positions = std::min(k, event.signature.size());
    for (std::size_t i = 0; i < positions; ++i) {
      if (event.signature[i] == signature[i]) ++matches;
    }
    result.jaccard = k == 0 ? 0.0
                            : static_cast<double>(matches) /
                                  static_cast<double>(k);
    result.support_estimate =
        event.sketch_p > 0 && !event.user_sketch.empty()
            ? akg::WeightedMinHasher::EstimateDistinctUsers(
                  event.user_sketch, event.sketch_p)
            : static_cast<double>(event.support);
    result.event = std::move(event);
    results->push_back(std::move(result));
  }

  std::sort(results->begin(), results->end(),
            [](const QueryResult& a, const QueryResult& b) {
              if (a.jaccard != b.jaccard) return a.jaccard > b.jaccard;
              if (a.support_estimate != b.support_estimate) {
                return a.support_estimate > b.support_estimate;
              }
              if (a.event.quantum != b.event.quantum) {
                return a.event.quantum > b.event.quantum;
              }
              return a.event.cluster_id < b.event.cluster_id;
            });
  if (results->size() > top_k) results->resize(top_k);
  return {};
}

Error LshIndex::ScanCommitted(std::vector<StoredEvent>* events) {
  std::lock_guard<std::mutex> lock(mu_);
  events->clear();
  return ScanChain([events](const StoredEvent& event, std::uint32_t,
                            std::uint16_t) { events->push_back(event); });
}

std::uint32_t LshIndex::next_event_id() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_event_id_;
}

}  // namespace scprt::store
