// The queryable event store: a banded Min-Hash LSH inverse index over the
// paged buffer pool, answering "which past events match these keywords?"
// without replaying the stream.
//
// Every reported cluster is persisted once as an event record (its
// snapshot facts, keyword spellings, a K = bands x rows keyword signature,
// and the deduped distinct-user sketch from PR 6), and its signature is
// posted into `bands` on-disk bucket chains. A query sketches its keywords
// the same way, probes one bucket per band, dedupes the candidate
// postings, loads the surviving records and re-ranks them by estimated
// keyword Jaccard — the classic S-curve: a pair with Jaccard J collides in
// at least one band with probability 1 - (1 - J^r)^b.
//
// Signatures hash keyword SPELLINGS (common/hash.h HashBytes under K
// per-function seeds), not dictionary ids, so a query needs no dictionary
// and an index outlives the run that built it.
//
// Re-ranking ties break by the distinct-user support estimate from the
// stored sketch (akg::WeightedMinHasher::EstimateDistinctUsers) — keys are
// one-per-user regardless of message counts, so a user spamming one
// keyword cannot promote a past event (tests/lsh_index_test.cc holds the
// line).
//
// Crash consistency (docs/formats.md): all page traffic flows through the
// BufferPool; Commit() = FlushAll + fdatasync + atomic STOREMETA publish
// (tmp + rename). The meta records the committed page count, event count
// and event-chain tail; a writer re-opening after a crash clamps the
// allocator and tail to the committed watermarks so the uncommitted
// physical tail is overwritten in place, and rebuilds the bucket
// directory from the committed event chain whenever the physical file is
// longer than the committed page count (the only case in which stale
// directory pointers can reference reusable pages). Queries filter
// postings to committed event ids and validate each record's CRC and id
// echo, so a reader sharing a live writer's file never surfaces a torn
// insert.
//
// All public entry points are serialized by one internal mutex: a query
// may run concurrently with ingest from another thread (the TSan suite
// drives exactly that).

#ifndef SCPRT_STORE_LSH_INDEX_H_
#define SCPRT_STORE_LSH_INDEX_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "akg/minhash.h"
#include "durability/error.h"
#include "obs/registry.h"
#include "store/buffer_pool.h"
#include "store/page_file.h"

namespace scprt::store {

/// Index shape. Fixed at Create and persisted in STOREMETA; Open ignores
/// the caller's copy and uses the stored one.
struct LshOptions {
  /// b: bucket chains probed per query.
  std::uint32_t bands = 8;
  /// r: signature rows hashed into one band key. bands * rows <= 64.
  std::uint32_t rows = 2;
  /// Directory slots per band (rounded up to a power of two).
  std::uint32_t directory_slots = 4096;
  /// Buffer-pool frames for this handle (not persisted; per open).
  std::size_t pool_frames = 256;
  /// Seed of the keyword hash family.
  std::uint64_t seed = 0x5ca1ab1e0ddba11ULL;
  /// fsync on Commit and meta publish (off only in tests).
  bool sync = true;
};

/// One decoded event record.
struct StoredEvent {
  std::uint32_t event_id = 0;
  std::uint64_t cluster_id = 0;
  std::int64_t quantum = 0;
  std::int64_t born_at = 0;
  double rank = 0.0;
  /// Window support at report time (distinct users, exact).
  std::uint64_t support = 0;
  /// Keyword spellings (possibly truncated; see kMaxRecordKeywords).
  std::vector<std::string> keywords;
  /// K = bands * rows per-function min-hash values of the keyword set.
  akg::MinHashSignature signature;
  /// Deduped distinct-user sketch (PR 6 semantics) and its size p.
  akg::WeightedSketch user_sketch;
  std::uint64_t sketch_p = 0;
};

/// One ranked query answer.
struct QueryResult {
  StoredEvent event;
  /// Fraction of the K signature positions matching the query's.
  double jaccard = 0.0;
  /// Distinct-user estimate from the stored sketch (spam-immune).
  double support_estimate = 0.0;
};

/// Caps keeping one event record within a single page.
inline constexpr std::size_t kMaxRecordKeywords = 48;
inline constexpr std::size_t kMaxSpellingBytes = 48;

class LshIndex {
 public:
  /// Creates an empty index in `directory` (which must exist): writes the
  /// page file (durability::IndexFileName) and publishes the initial
  /// STOREMETA.
  static std::unique_ptr<LshIndex> Create(const std::string& directory,
                                          const LshOptions& options,
                                          durability::Error* error = nullptr);

  /// Opens an existing index for writing: recovers to the committed
  /// watermarks, rebuilds the bucket directory if the file has an
  /// uncommitted physical tail, and scans the committed events to rebuild
  /// the (cluster, quantum) dedup set. `pool_frames`/`sync` are taken from
  /// `options`; the persisted shape wins over the rest.
  static std::unique_ptr<LshIndex> Open(const std::string& directory,
                                        const LshOptions& options,
                                        durability::Error* error = nullptr);

  /// Opens for queries only (O_RDONLY file, no recovery scan). Insert and
  /// Commit fail with kIo.
  static std::unique_ptr<LshIndex> OpenReadOnly(
      const std::string& directory, std::size_t pool_frames,
      durability::Error* error = nullptr);

  /// Inserts one reported event. Idempotent on (cluster_id, quantum) —
  /// checkpoint replay re-offers events and the second offer is a no-op.
  /// `keywords` are spellings (the signature input); `user_sketch` is the
  /// deduped distinct-user sketch exported at report time.
  durability::Error Insert(std::uint64_t cluster_id, std::int64_t quantum,
                           std::int64_t born_at, double rank,
                           std::uint64_t support,
                           const std::vector<std::string>& keywords,
                           const akg::WeightedSketch& user_sketch,
                           std::uint64_t sketch_p);

  /// Makes every insert so far durable and query-visible: FlushAll, file
  /// sync, atomic meta publish.
  durability::Error Commit();

  /// Sketches `keywords`, probes one bucket per band, dedupes candidates,
  /// loads and re-ranks them. Results ordered by (jaccard desc,
  /// support_estimate desc, quantum desc, cluster_id asc), truncated to
  /// `top_k`. Only committed events are visible.
  durability::Error Query(const std::vector<std::string>& keywords,
                          std::size_t top_k,
                          std::vector<QueryResult>* results);

  /// Every committed event in insertion order (golden corpus derivation,
  /// recovery, debugging).
  durability::Error ScanCommitted(std::vector<StoredEvent>* events);

  /// The K-value query signature of a keyword set (test hook: lets the
  /// recall suite compute collision probabilities the same way Query
  /// does).
  akg::MinHashSignature SketchKeywords(
      const std::vector<std::string>& keywords) const;

  std::uint32_t bands() const { return bands_; }
  std::uint32_t rows() const { return rows_; }
  std::uint32_t committed_events() const { return committed_events_; }
  std::uint32_t next_event_id() const;
  std::uint32_t page_count() const { return file_->page_count(); }
  BufferPool& pool() { return *pool_; }

 private:
  LshIndex() = default;

  struct Posting {
    std::uint64_t band_key = 0;
    std::uint32_t event_id = 0;
    std::uint32_t page = 0;
    std::uint16_t offset = 0;
  };

  static std::unique_ptr<LshIndex> OpenImpl(const std::string& directory,
                                            const LshOptions& options,
                                            bool read_only,
                                            durability::Error* error);

  std::uint64_t BandKey(const akg::MinHashSignature& signature,
                        std::uint32_t band) const;
  std::uint32_t DirectoryPages() const;
  durability::Error ReadDirectorySlot(std::uint32_t band, std::uint64_t key,
                                      std::uint32_t* head);
  durability::Error WriteDirectorySlot(std::uint32_t band, std::uint64_t key,
                                       std::uint32_t head);
  durability::Error InitDirectory();
  durability::Error AppendEventRecord(const std::string& payload,
                                      std::uint32_t* page,
                                      std::uint16_t* offset);
  durability::Error AppendPosting(std::uint32_t band,
                                  const Posting& posting);
  durability::Error CollectBand(std::uint32_t band, std::uint64_t key,
                                std::vector<Posting>* postings);
  durability::Error LoadRecord(std::uint32_t page, std::uint16_t offset,
                               std::uint32_t expect_event_id,
                               StoredEvent* event, bool* valid);
  /// Walks the committed event chain; stops at the committed tail.
  durability::Error ScanChain(
      const std::function<void(const StoredEvent&, std::uint32_t page,
                               std::uint16_t offset)>& fn);
  durability::Error RebuildDirectory();
  durability::Error PublishMeta();
  std::string MetaPath() const;

  mutable std::mutex mu_;
  std::string directory_;
  std::unique_ptr<PageFile> file_;
  std::unique_ptr<BufferPool> pool_;
  bool read_only_ = false;
  bool sync_ = true;

  // Shape (persisted).
  std::uint32_t bands_ = 0;
  std::uint32_t rows_ = 0;
  std::uint32_t directory_slots_ = 0;
  std::uint64_t seed_ = 0;
  std::uint64_t file_number_ = 0;

  // Committed watermarks (persisted) and live tail.
  std::uint32_t committed_pages_ = 0;
  std::uint32_t committed_events_ = 0;
  std::uint32_t next_event_id_ = 0;
  std::uint32_t event_head_page_ = 0;
  std::uint32_t event_tail_page_ = 0;
  std::uint16_t event_tail_offset_ = 0;

  /// (cluster_id, quantum) of every event inserted (writer only) — the
  /// idempotency set checkpoint replay bounces off.
  std::set<std::pair<std::uint64_t, std::int64_t>> seen_;

  obs::Counter* inserts_ = nullptr;
  obs::Histogram* query_latency_ = nullptr;
};

}  // namespace scprt::store

#endif  // SCPRT_STORE_LSH_INDEX_H_
