// The paged-file layer of the event store: a file of fixed 4 KB pages,
// each CRC-framed so torn writes and bit flips surface as typed errors
// instead of garbage reads.
//
// Frame layout (docs/formats.md, event-store pages):
//
//   offset  size  field
//   0       4     CRC-32 (IEEE) of bytes [4, 4096) — page-no echo + payload
//   4       4     page number echo (little-endian u32)
//   8       4088  payload
//
// The page-number echo makes a page self-identifying: a block that lands
// at the wrong offset (or a stale page surfaced by a torn multi-page
// write) fails verification even when its CRC is internally consistent.
// Page 0 is the file header (magic, version, page size) written once at
// Create; every other page belongs to the index layers above.
//
// The logical page count is decoupled from the physical file size:
// recovery re-opens with the committed count and the allocator hands the
// uncommitted tail out again, overwriting garbage in place. Single
// writer; readers may share a file that a writer only grows.

#ifndef SCPRT_STORE_PAGE_FILE_H_
#define SCPRT_STORE_PAGE_FILE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "durability/error.h"

namespace scprt::store {

/// Total bytes of one page frame on disk.
inline constexpr std::size_t kPageSize = 4096;
/// Frame header: u32 CRC + u32 page-number echo.
inline constexpr std::size_t kPageHeaderSize = 8;
/// Payload bytes available to the layers above.
inline constexpr std::size_t kPagePayloadSize = kPageSize - kPageHeaderSize;

/// Positional page I/O over one POSIX descriptor.
class PageFile {
 public:
  /// Creates (truncating) `path` and writes the header page. The logical
  /// page count starts at 1 (page 0 is the header).
  static std::unique_ptr<PageFile> Create(const std::string& path,
                                          durability::Error* error = nullptr);

  /// Opens an existing file and verifies the header page. The logical page
  /// count is derived from the physical size; callers recovering from a
  /// meta record should clamp it with set_page_count(). `read_only` opens
  /// the descriptor O_RDONLY (queries against a live writer's file).
  static std::unique_ptr<PageFile> Open(const std::string& path,
                                        bool read_only,
                                        durability::Error* error = nullptr);

  ~PageFile();
  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  /// Reads page `page_no` into `payload` (kPagePayloadSize bytes).
  /// kCorrupt when the CRC or the page-number echo fails; kIo on a short
  /// or failed read.
  durability::Error ReadPage(std::uint32_t page_no, char* payload);

  /// Frames and writes `payload` (kPagePayloadSize bytes) as page
  /// `page_no`. Does not sync.
  durability::Error WritePage(std::uint32_t page_no, const char* payload);

  /// Hands out the next logical page number (physical extension happens at
  /// first write).
  std::uint32_t AllocatePage() { return page_count_++; }

  /// Logical page count (allocated, not necessarily written or durable).
  std::uint32_t page_count() const { return page_count_; }

  /// Recovery clamp: re-bases the allocator at `count` so the uncommitted
  /// physical tail is handed out (and overwritten) again.
  void set_page_count(std::uint32_t count) { page_count_ = count; }

  /// fdatasync. False => ErrorCode::kSyncFailed territory for the caller.
  bool Sync();

  const std::string& path() const { return path_; }

 private:
  PageFile(int fd, std::string path, std::uint32_t page_count);

  int fd_;
  std::string path_;
  std::uint32_t page_count_;
};

}  // namespace scprt::store

#endif  // SCPRT_STORE_PAGE_FILE_H_
