#include "store/buffer_pool.h"

#include <cstring>
#include <limits>

#include "common/check.h"

namespace scprt::store {

using durability::Error;
using durability::ErrorCode;
using durability::MakeError;

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    page_no_ = other.page_no_;
    other.pool_ = nullptr;
  }
  return *this;
}

char* PageHandle::data() {
  SCPRT_DCHECK(pool_ != nullptr);
  return pool_->frames_[frame_].payload.get();
}

const char* PageHandle::data() const {
  SCPRT_DCHECK(pool_ != nullptr);
  return pool_->frames_[frame_].payload.get();
}

void PageHandle::MarkDirty() {
  SCPRT_DCHECK(pool_ != nullptr);
  pool_->frames_[frame_].dirty = true;
}

void PageHandle::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
  }
}

BufferPool::BufferPool(PageFile* file, std::size_t frames)
    : file_(file),
      reads_(obs::Registry::Default().GetCounter("store.page_read")),
      writes_(obs::Registry::Default().GetCounter("store.page_write")),
      evictions_(obs::Registry::Default().GetCounter("store.page_evict")) {
  SCPRT_CHECK(frames >= 1);
  frames_.resize(frames);
  for (Frame& frame : frames_) {
    frame.payload = std::make_unique<char[]>(kPagePayloadSize);
  }
}

Error BufferPool::Fetch(std::uint32_t page_no, PageHandle* handle) {
  if (const auto it = page_to_frame_.find(page_no);
      it != page_to_frame_.end()) {
    Frame& frame = frames_[it->second];
    ++frame.pins;
    frame.last_use = ++clock_;
    *handle = PageHandle(this, it->second, page_no);
    return {};
  }
  std::size_t slot = 0;
  if (Error e = AcquireFrame(&slot); !e.ok()) return e;
  Frame& frame = frames_[slot];
  if (Error e = file_->ReadPage(page_no, frame.payload.get()); !e.ok()) {
    return e;  // frame stays free (in_use false)
  }
  reads_->Increment();
  frame.page_no = page_no;
  frame.in_use = true;
  frame.dirty = false;
  frame.pins = 1;
  frame.last_use = ++clock_;
  page_to_frame_[page_no] = slot;
  *handle = PageHandle(this, slot, page_no);
  return {};
}

Error BufferPool::NewPage(PageHandle* handle) {
  std::size_t slot = 0;
  if (Error e = AcquireFrame(&slot); !e.ok()) return e;
  const std::uint32_t page_no = file_->AllocatePage();
  Frame& frame = frames_[slot];
  std::memset(frame.payload.get(), 0, kPagePayloadSize);
  frame.page_no = page_no;
  frame.in_use = true;
  frame.dirty = true;
  frame.pins = 1;
  frame.last_use = ++clock_;
  page_to_frame_[page_no] = slot;
  *handle = PageHandle(this, slot, page_no);
  return {};
}

Error BufferPool::FlushAll() {
  for (Frame& frame : frames_) {
    if (frame.in_use && frame.dirty) {
      if (Error e = WriteBack(frame); !e.ok()) return e;
    }
  }
  return {};
}

void BufferPool::DropClean() {
  for (std::size_t i = 0; i < frames_.size(); ++i) {
    Frame& frame = frames_[i];
    if (frame.in_use && frame.pins == 0 && !frame.dirty) {
      page_to_frame_.erase(frame.page_no);
      frame.in_use = false;
    }
  }
}

std::size_t BufferPool::pinned() const {
  std::size_t n = 0;
  for (const Frame& frame : frames_) {
    if (frame.in_use && frame.pins > 0) ++n;
  }
  return n;
}

std::size_t BufferPool::dirty() const {
  std::size_t n = 0;
  for (const Frame& frame : frames_) {
    if (frame.in_use && frame.dirty) ++n;
  }
  return n;
}

Error BufferPool::AcquireFrame(std::size_t* out) {
  // A never-used frame first.
  for (std::size_t i = 0; i < frames_.size(); ++i) {
    if (!frames_[i].in_use) {
      *out = i;
      return {};
    }
  }
  // Evict the LRU unpinned frame. Pinned frames are untouchable — when
  // everything is pinned the pool is genuinely full and reports kBusy.
  std::size_t victim = frames_.size();
  std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
  for (std::size_t i = 0; i < frames_.size(); ++i) {
    const Frame& frame = frames_[i];
    if (frame.pins == 0 && frame.last_use < oldest) {
      oldest = frame.last_use;
      victim = i;
    }
  }
  if (victim == frames_.size()) {
    return MakeError(ErrorCode::kBusy,
                     "buffer pool: all " + std::to_string(frames_.size()) +
                         " frames pinned");
  }
  Frame& frame = frames_[victim];
  if (frame.dirty) {
    if (Error e = WriteBack(frame); !e.ok()) return e;
  }
  evictions_->Increment();
  page_to_frame_.erase(frame.page_no);
  frame.in_use = false;
  *out = victim;
  return {};
}

Error BufferPool::WriteBack(Frame& frame) {
  if (Error e = file_->WritePage(frame.page_no, frame.payload.get());
      !e.ok()) {
    return e;
  }
  writes_->Increment();
  frame.dirty = false;
  return {};
}

void BufferPool::Unpin(std::size_t frame) {
  Frame& f = frames_[frame];
  SCPRT_DCHECK(f.pins > 0);
  --f.pins;
}

}  // namespace scprt::store
