#include "store/page_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string_view>

#include "common/binary_io.h"

namespace scprt::store {

namespace {

using durability::Error;
using durability::ErrorCode;
using durability::MakeError;

constexpr char kPageFileMagic[8] = {'S', 'C', 'P', 'R', 'T', 'P', 'G', 'F'};
constexpr std::uint32_t kPageFileVersion = 1;

Error Errno(ErrorCode code, const std::string& what, const std::string& path) {
  return MakeError(code, what + " " + path + ": " + std::strerror(errno));
}

// Frames `payload` as page `page_no` into `frame` (kPageSize bytes).
void FramePage(std::uint32_t page_no, const char* payload, char* frame) {
  const std::uint32_t echo = page_no;
  for (int i = 0; i < 4; ++i) {
    frame[4 + i] = static_cast<char>(echo >> (8 * i));
  }
  std::memcpy(frame + kPageHeaderSize, payload, kPagePayloadSize);
  const std::uint32_t crc =
      Crc32(std::string_view(frame + 4, kPageSize - 4));
  for (int i = 0; i < 4; ++i) {
    frame[i] = static_cast<char>(crc >> (8 * i));
  }
}

std::uint32_t ReadU32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[i]))
         << (8 * i);
  }
  return v;
}

bool PreadFull(int fd, char* buf, std::size_t n, off_t offset) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t r = ::pread(fd, buf + done, n - done, offset + done);
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(r);
  }
  return true;
}

bool PwriteFull(int fd, const char* buf, std::size_t n, off_t offset) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t r = ::pwrite(fd, buf + done, n - done, offset + done);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

PageFile::PageFile(int fd, std::string path, std::uint32_t page_count)
    : fd_(fd), path_(std::move(path)), page_count_(page_count) {}

PageFile::~PageFile() {
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<PageFile> PageFile::Create(const std::string& path,
                                           Error* error) {
  const int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_RDWR, 0644);
  if (fd < 0) {
    if (error != nullptr) *error = Errno(ErrorCode::kIo, "open", path);
    return nullptr;
  }
  auto file = std::unique_ptr<PageFile>(new PageFile(fd, path, 0));
  char payload[kPagePayloadSize] = {};
  std::memcpy(payload, kPageFileMagic, sizeof(kPageFileMagic));
  for (int i = 0; i < 4; ++i) {
    payload[8 + i] = static_cast<char>(kPageFileVersion >> (8 * i));
    payload[12 + i] =
        static_cast<char>(static_cast<std::uint32_t>(kPageSize) >> (8 * i));
  }
  const std::uint32_t header = file->AllocatePage();  // page 0
  if (Error e = file->WritePage(header, payload); !e.ok()) {
    if (error != nullptr) *error = std::move(e);
    return nullptr;
  }
  return file;
}

std::unique_ptr<PageFile> PageFile::Open(const std::string& path,
                                         bool read_only, Error* error) {
  const int fd = ::open(path.c_str(), read_only ? O_RDONLY : O_RDWR);
  if (fd < 0) {
    if (error != nullptr) *error = Errno(ErrorCode::kIo, "open", path);
    return nullptr;
  }
  const off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < static_cast<off_t>(kPageSize)) {
    ::close(fd);
    if (error != nullptr) {
      *error = MakeError(ErrorCode::kCorrupt,
                         path + ": shorter than one page");
    }
    return nullptr;
  }
  auto file = std::unique_ptr<PageFile>(new PageFile(
      fd, path,
      static_cast<std::uint32_t>(static_cast<std::uint64_t>(size) /
                                 kPageSize)));
  char payload[kPagePayloadSize];
  if (Error e = file->ReadPage(0, payload); !e.ok()) {
    if (error != nullptr) *error = std::move(e);
    return nullptr;
  }
  if (std::memcmp(payload, kPageFileMagic, sizeof(kPageFileMagic)) != 0) {
    if (error != nullptr) {
      *error = MakeError(ErrorCode::kBadMagic, path + ": not a page file");
    }
    return nullptr;
  }
  if (ReadU32(payload + 8) != kPageFileVersion) {
    if (error != nullptr) {
      *error = MakeError(ErrorCode::kVersionSkew,
                         path + ": unsupported page file version");
    }
    return nullptr;
  }
  if (ReadU32(payload + 12) != kPageSize) {
    if (error != nullptr) {
      *error = MakeError(ErrorCode::kCorrupt,
                         path + ": page size mismatch");
    }
    return nullptr;
  }
  return file;
}

Error PageFile::ReadPage(std::uint32_t page_no, char* payload) {
  char frame[kPageSize];
  if (!PreadFull(fd_, frame, kPageSize,
                 static_cast<off_t>(page_no) *
                     static_cast<off_t>(kPageSize))) {
    return Errno(ErrorCode::kIo,
                 "read page " + std::to_string(page_no) + " of", path_);
  }
  const std::uint32_t stored_crc = ReadU32(frame);
  const std::uint32_t crc = Crc32(std::string_view(frame + 4, kPageSize - 4));
  if (crc != stored_crc) {
    return MakeError(ErrorCode::kCorrupt,
                     path_ + ": CRC mismatch on page " +
                         std::to_string(page_no));
  }
  if (ReadU32(frame + 4) != page_no) {
    return MakeError(ErrorCode::kCorrupt,
                     path_ + ": page " + std::to_string(page_no) +
                         " carries number " +
                         std::to_string(ReadU32(frame + 4)));
  }
  std::memcpy(payload, frame + kPageHeaderSize, kPagePayloadSize);
  return {};
}

Error PageFile::WritePage(std::uint32_t page_no, const char* payload) {
  char frame[kPageSize];
  FramePage(page_no, payload, frame);
  if (!PwriteFull(fd_, frame, kPageSize,
                  static_cast<off_t>(page_no) *
                      static_cast<off_t>(kPageSize))) {
    return Errno(ErrorCode::kIo,
                 "write page " + std::to_string(page_no) + " of", path_);
  }
  return {};
}

bool PageFile::Sync() {
#if defined(__APPLE__)
  return ::fsync(fd_) == 0;
#else
  return ::fdatasync(fd_) == 0;
#endif
}

}  // namespace scprt::store
