// The offline comparison baseline of Section 7.3: biconnected-component
// clustering recomputed on the whole AKG after each quantum, in the style of
// Bansal et al., "Seeking Stable Clusters in the Blogosphere" (VLDB 2007)
// — the paper's reference [2].
//
// Two variants are measured in Table 3:
//   * "Bi-connected Clusters": BCCs with >= 2 edges;
//   * "Bi-connected clusters + Edges": additionally, every edge that is not
//     part of any larger BCC is reported as a cluster of size 2 (this is
//     what inflates Ac by 276% and collapses precision to 0.216).

#ifndef SCPRT_BASELINE_BCC_CLUSTERING_H_
#define SCPRT_BASELINE_BCC_CLUSTERING_H_

#include <vector>

#include "graph/graph.h"

namespace scprt::baseline {

/// Offline BC clustering of `g`. When `include_edge_clusters` is set,
/// bridge edges are returned as size-2 clusters too. Each inner vector is
/// one cluster's edge set, canonically sorted.
std::vector<std::vector<graph::Edge>> BcClusters(
    const graph::DynamicGraph& g, bool include_edge_clusters);

}  // namespace scprt::baseline

#endif  // SCPRT_BASELINE_BCC_CLUSTERING_H_
