#include "baseline/comparison.h"

#include <algorithm>
#include <set>

namespace scprt::baseline {

using graph::Edge;
using graph::NodeId;

std::vector<NodeId> ClusterNodes(const std::vector<Edge>& edges) {
  std::vector<NodeId> nodes;
  nodes.reserve(edges.size() * 2);
  for (const Edge& e : edges) {
    nodes.push_back(e.u);
    nodes.push_back(e.v);
  }
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  return nodes;
}

ClusterComparison CompareClusterings(
    const std::vector<std::vector<Edge>>& a,
    const std::vector<std::vector<Edge>>& b) {
  ClusterComparison cmp;
  cmp.a_count = a.size();
  cmp.b_count = b.size();

  std::set<std::vector<NodeId>> a_nodes;
  for (const auto& cluster : a) a_nodes.insert(ClusterNodes(cluster));

  std::size_t overlap_nodes_total = 0;
  std::size_t non_overlap_nodes_total = 0;
  std::size_t non_overlap_count = 0;
  for (const auto& cluster : b) {
    const std::vector<NodeId> nodes = ClusterNodes(cluster);
    if (a_nodes.count(nodes)) {
      ++cmp.exact_overlap;
      overlap_nodes_total += nodes.size();
    } else {
      ++non_overlap_count;
      non_overlap_nodes_total += nodes.size();
    }
  }
  if (cmp.a_count > 0) {
    cmp.additional_pct =
        100.0 *
        (static_cast<double>(cmp.b_count) - static_cast<double>(cmp.a_count)) /
        static_cast<double>(cmp.a_count);
  }
  if (cmp.exact_overlap > 0) {
    cmp.avg_overlap_size = static_cast<double>(overlap_nodes_total) /
                           static_cast<double>(cmp.exact_overlap);
  }
  if (non_overlap_count > 0) {
    cmp.avg_non_overlap_size = static_cast<double>(non_overlap_nodes_total) /
                               static_cast<double>(non_overlap_count);
  }
  return cmp;
}

}  // namespace scprt::baseline
