#include "baseline/bcc_clustering.h"

#include <algorithm>

#include "graph/bcc.h"

namespace scprt::baseline {

using graph::Edge;

std::vector<std::vector<Edge>> BcClusters(const graph::DynamicGraph& g,
                                          bool include_edge_clusters) {
  graph::BccResult bcc = graph::BiconnectedComponents(g);
  std::vector<std::vector<Edge>> clusters;
  clusters.reserve(bcc.components.size());
  for (auto& component : bcc.components) {
    if (component.size() < 2 && !include_edge_clusters) continue;
    std::sort(component.begin(), component.end());
    clusters.push_back(std::move(component));
  }
  std::sort(clusters.begin(), clusters.end());
  return clusters;
}

}  // namespace scprt::baseline
