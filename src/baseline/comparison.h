// Cluster-set comparison utilities for the Section 7.3 study: additional
// clusters (Ac), exact-overlap fraction, and per-cluster node-set views.

#ifndef SCPRT_BASELINE_COMPARISON_H_
#define SCPRT_BASELINE_COMPARISON_H_

#include <vector>

#include "graph/graph.h"

namespace scprt::baseline {

/// Node set (sorted) of a cluster given as an edge set.
std::vector<graph::NodeId> ClusterNodes(const std::vector<graph::Edge>& edges);

/// Summary of comparing clustering `a` (e.g. SCP) with `b` (e.g. offline BC).
struct ClusterComparison {
  std::size_t a_count = 0;
  std::size_t b_count = 0;
  /// Clusters of `b` whose node set exactly equals some cluster of `a`.
  std::size_t exact_overlap = 0;
  /// (b_count - a_count) / a_count * 100 — the paper's "additional
  /// clusters" percentage.
  double additional_pct = 0.0;
  /// Mean node count of the exactly-overlapping clusters.
  double avg_overlap_size = 0.0;
  /// Mean node count of b-clusters with no exact a-counterpart.
  double avg_non_overlap_size = 0.0;
};

/// Compares two clusterings by node sets.
ClusterComparison CompareClusterings(
    const std::vector<std::vector<graph::Edge>>& a,
    const std::vector<std::vector<graph::Edge>>& b);

}  // namespace scprt::baseline

#endif  // SCPRT_BASELINE_COMPARISON_H_
