// Bounded lock-free single-producer/single-consumer ring buffer.
//
// The classic two-index design: the producer owns `tail_`, the consumer
// owns `head_`, each reads the other's index with acquire ordering and
// publishes its own with release ordering. No locks, no CAS loops — one
// atomic load + one atomic store per operation on the fast path. Used as
// the per-shard task channel of engine/shard_pool.h (driver thread =
// producer, shard worker = consumer).

#ifndef SCPRT_ENGINE_SPSC_QUEUE_H_
#define SCPRT_ENGINE_SPSC_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/check.h"

namespace scprt::engine {

/// Fixed-capacity SPSC queue. Exactly one thread may call TryPush and
/// exactly one thread may call TryPop (they may be different threads).
template <typename T>
class SpscQueue {
 public:
  /// `capacity` must be a power of two >= 2.
  explicit SpscQueue(std::size_t capacity)
      : mask_(capacity - 1), slots_(capacity) {
    SCPRT_CHECK(capacity >= 2 && (capacity & mask_) == 0);
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Producer side. False when the queue is full.
  bool TryPush(T value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) > mask_) return false;
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. False when the queue is empty.
  bool TryPop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return false;
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Approximate size (exact when called from either owning thread).
  std::size_t size() const {
    return tail_.load(std::memory_order_acquire) -
           head_.load(std::memory_order_acquire);
  }

  bool empty() const { return size() == 0; }
  std::size_t capacity() const { return mask_ + 1; }

 private:
  const std::size_t mask_;
  std::vector<T> slots_;
  // Producer and consumer indices on separate cache lines to avoid false
  // sharing between the two owning threads.
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
};

}  // namespace scprt::engine

#endif  // SCPRT_ENGINE_SPSC_QUEUE_H_
