#include "engine/parallel_detector.h"

#include <algorithm>
#include <iterator>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/binary_io.h"
#include "common/parallel.h"
#include "detect/snapshot_io.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace scprt::engine {
namespace {

std::size_t ResolveThreads(std::size_t threads) {
  if (threads > 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace

ParallelDetector::ParallelDetector(const ParallelDetectorConfig& config,
                                   const text::KeywordDictionary* dictionary)
    : pool_(ResolveThreads(config.threads)),
      detector_(config.detector, dictionary),
      quantizer_(config.detector.quantum_size) {
  if (pool_.threads() > 1) {
    detector_.set_parallel_for(
        [this](std::size_t n, const std::function<void(std::size_t)>& body) {
          pool_.ParallelFor(n, body);
        });
  }
}

std::optional<detect::QuantumReport> ParallelDetector::Push(
    const stream::Message& message) {
  auto quantum = quantizer_.Push(message);
  if (!quantum) return std::nullopt;
  return ProcessQuantum(*quantum);
}

detect::QuantumReport ParallelDetector::ProcessQuantum(
    const stream::Quantum& quantum) {
  if (quantizer_.next_index() <= quantum.index) {
    quantizer_.SetNextIndex(quantum.index + 1);
  }
  const akg::QuantumAggregate aggregate = ShardAggregate(quantum);
  // Core detection (AKG update, clustering, ranking) as its own span so a
  // trace separates aggregation cost from detection cost per quantum.
  obs::ScopedSpan span("detect.core");
  return detector_.ProcessQuantumWithAggregate(quantum, aggregate);
}

std::vector<detect::QuantumReport> ParallelDetector::Run(
    const std::vector<stream::Message>& trace) {
  std::vector<detect::QuantumReport> reports;
  for (const stream::Message& m : trace) {
    if (auto report = Push(m)) reports.push_back(*std::move(report));
  }
  return reports;
}

bool ParallelDetector::SaveCheckpoint(std::ostream& out,
                                      std::uint64_t* checkpoint_id,
                                      const detect::CheckpointExtras& extras) {
  namespace sio = detect::snapshot_io;
  pool_.Quiesce();  // all shard work fenced; core state is ours to read
  BinaryWriter payload;
  sio::WriteConfig(payload, detector_.config());
  // The engine's outer quantizer owns accumulation (the core's stays
  // empty), so its clock and pending messages are the snapshot's — unless
  // an even-more-outer quantizer (the ingest assembler's) overrides it.
  detector_.SaveState(payload, extras.quantizer_override != nullptr
                                   ? extras.quantizer_override
                                   : &quantizer_);
  if (extras.ingest != nullptr) {
    sio::WriteIngestSection(payload, *extras.ingest);
  }
  return sio::WriteFrame(out, sio::FrameKind::kFull, payload.data(),
                         checkpoint_id);
}

std::unique_ptr<ParallelDetector> ParallelDetector::LoadCheckpoint(
    std::istream& in, const text::KeywordDictionary* dictionary,
    std::size_t threads, std::uint64_t* checkpoint_id,
    detect::snapshot_io::LoadError* error,
    detect::snapshot_io::IngestState* ingest, bool* ingest_present) {
  namespace sio = detect::snapshot_io;
  std::unique_ptr<ParallelDetector> engine;
  if (!sio::ReadFullSnapshot(
          in,
          [&](BinaryReader& reader, const detect::DetectorConfig& parsed) {
            ParallelDetectorConfig config;
            config.detector = parsed;
            config.threads = threads;
            engine = std::make_unique<ParallelDetector>(config, dictionary);
            return engine->detector_.RestoreState(reader);
          },
          checkpoint_id, error, ingest, ingest_present)) {
    return nullptr;
  }
  // Move the restored partial quantum into the outer quantizer — the core
  // never accumulates in engine mode.
  engine->quantizer_.Restore(engine->detector_.next_quantum_index(),
                             engine->detector_.TakePendingMessages());
  return engine;
}

bool ParallelDetector::SaveDeltaCheckpoint(
    std::uint64_t base_id, const std::vector<stream::Quantum>& quanta,
    std::ostream& out, const detect::CheckpointExtras& extras) {
  namespace sio = detect::snapshot_io;
  pool_.Quiesce();
  // The outer quantizer owns accumulation in engine mode: its clock and
  // pending messages are the delta's (the core's pending is always empty).
  // The ingest assembler's quantizer overrides both when supplied.
  const stream::Quantizer& quantizer = extras.quantizer_override != nullptr
                                           ? *extras.quantizer_override
                                           : quantizer_;
  BinaryWriter payload;
  sio::WriteDelta(payload, base_id, quantizer.next_index(), quanta,
                  quantizer.pending());
  if (extras.ingest != nullptr) {
    sio::WriteIngestSection(payload, *extras.ingest);
  }
  return sio::WriteFrame(out, sio::FrameKind::kDelta, payload.data());
}

bool ParallelDetector::ApplyDeltaCheckpoint(
    std::istream& in, std::uint64_t expected_base_id,
    detect::snapshot_io::LoadError* error,
    detect::snapshot_io::IngestState* ingest, bool* ingest_present) {
  namespace sio = detect::snapshot_io;
  sio::DeltaPayload delta;
  if (!sio::ReadAndValidateDelta(in, expected_base_id,
                                 quantizer_.next_index(),
                                 detector_.config().quantum_size, delta,
                                 error, ingest, ingest_present)) {
    return false;
  }
  ApplyValidatedDelta(delta);
  return true;
}

void ParallelDetector::ApplyValidatedDelta(
    const detect::snapshot_io::DeltaPayload& delta) {
  // Mirror of detect::ApplyDeltaCheckpoint, replayed through the sharded
  // pipeline (reports are bit-identical either way). The base's pending
  // partial quantum is superseded by the delta's.
  quantizer_.Restore(quantizer_.next_index(), {});
  for (const stream::Quantum& quantum : delta.quanta) {
    ProcessQuantum(quantum);
  }
  for (const stream::Message& m : delta.pending) {
    Push(m);
  }
}

akg::QuantumAggregate ParallelDetector::ShardAggregate(
    const stream::Quantum& quantum) {
  // Stage instrumentation: clock reads and relaxed stat writes only — no
  // ordering, no branching on data — so the aggregate stays bit-identical
  // with observability on or off (parallel_detector_test holds this).
  obs::Registry& reg = obs::Registry::Default();
  static obs::Histogram* const aggregate_hist =
      reg.GetHistogram("engine.aggregate_ns");
  static obs::Histogram* const route_hist =
      reg.GetHistogram("engine.route_ns");
  static obs::Histogram* const reduce_hist =
      reg.GetHistogram("engine.reduce_ns");
  static obs::Histogram* const merge_hist =
      reg.GetHistogram("engine.merge_ns");
  static obs::Histogram* const shard_detect_hist =
      reg.GetHistogram("engine.shard_detect_ns");
  static obs::Histogram* const shard_pairs_hist =
      reg.GetHistogram("engine.shard_pairs", "pairs");
  static obs::Gauge* const imbalance_gauge =
      reg.GetGauge("engine.shard_imbalance");
  obs::ScopedSpan aggregate_span("aggregate");
  obs::ScopedHistogramTimer aggregate_timer(aggregate_hist);

  const std::size_t shards = pool_.threads();
  if (shards <= 1) return akg::AggregateQuantum(quantum);

  // Phase A — slice-parallel routing: worker w scans only its slice of
  // the quantum and buckets (keyword, user) pairs by owning shard, so the
  // total scan work stays O(messages) regardless of the shard count.
  using Routed = std::vector<std::vector<std::pair<KeywordId, UserId>>>;
  std::vector<Routed> routed(shards, Routed(shards));
  const std::size_t messages = quantum.messages.size();
  {
    obs::ScopedSpan span("aggregate.route");
    obs::ScopedHistogramTimer timer(route_hist);
    pool_.RunShards(shards, [&](std::size_t w) {
      Routed& buckets = routed[w];
      const std::size_t begin = w * messages / shards;
      const std::size_t end = (w + 1) * messages / shards;
      for (std::size_t i = begin; i < end; ++i) {
        const stream::Message& m = quantum.messages[i];
        for (KeywordId k : m.keywords) {
          buckets[k % shards].emplace_back(k, m.user);
        }
      }
    });
  }

  // Phase B — shard-parallel reduce: shard s gathers every worker's bucket
  // for s and canonicalizes through the same helper AggregateQuantum uses,
  // so the merged result equals the serial aggregate exactly. Per-shard
  // wall time and pair counts feed the imbalance gauge — the signal the
  // distributed-sharding tier will rebalance on.
  std::vector<akg::QuantumAggregate> parts(shards);
  {
    obs::ScopedSpan span("aggregate.reduce");
    obs::ScopedHistogramTimer timer(reduce_hist);
    const bool observed = obs::Enabled();
    std::vector<std::int64_t> shard_ns(observed ? shards : 0, 0);
    pool_.RunShards(shards, [&](std::size_t s) {
      obs::ScopedSpan shard_span("shard.detect");
      const std::int64_t t0 = observed ? obs::MonotonicNanos() : 0;
      std::size_t pairs = 0;
      std::unordered_map<KeywordId, std::vector<UserId>> users_of;
      for (std::size_t w = 0; w < shards; ++w) {
        pairs += routed[w][s].size();
        for (const auto& [keyword, user] : routed[w][s]) {
          users_of[keyword].push_back(user);
        }
      }
      parts[s] = akg::CanonicalAggregate(std::move(users_of), quantum.index);
      if (observed) {
        shard_ns[s] = obs::MonotonicNanos() - t0;
        shard_detect_hist->Record(static_cast<std::uint64_t>(shard_ns[s]));
        shard_pairs_hist->Record(pairs);
      }
    });
    if (observed) {
      std::int64_t max_ns = 0;
      std::int64_t total_ns = 0;
      for (const std::int64_t ns : shard_ns) {
        max_ns = std::max(max_ns, ns);
        total_ns += ns;
      }
      const double mean =
          static_cast<double>(total_ns) / static_cast<double>(shards);
      imbalance_gauge->Set(mean > 0 ? static_cast<double>(max_ns) / mean
                                    : 1.0);
    }
  }

  // Phase C — tree-reduce merge: pairwise sorted merges of the shard
  // outputs, each level running on the pool. Shards own disjoint keyword
  // classes (k % shards), so every merge is a pure interleave of two sorted
  // runs with no key collisions — associative and commutative, hence the
  // same canonical order AggregateQuantum produces at any thread count and
  // for any tree shape.
  using Entries = std::vector<akg::QuantumAggregate::Entry>;
  std::vector<Entries> runs(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    runs[s] = std::move(parts[s].keywords);
  }
  const auto merge_runs = [](Entries a, Entries b) {
    Entries out;
    out.reserve(a.size() + b.size());
    std::merge(std::make_move_iterator(a.begin()),
               std::make_move_iterator(a.end()),
               std::make_move_iterator(b.begin()),
               std::make_move_iterator(b.end()), std::back_inserter(out),
               [](const akg::QuantumAggregate::Entry& x,
                  const akg::QuantumAggregate::Entry& y) {
                 return x.keyword < y.keyword;
               });
    return out;
  };
  akg::QuantumAggregate aggregate;
  aggregate.index = quantum.index;
  {
    obs::ScopedSpan span("aggregate.merge");
    obs::ScopedHistogramTimer timer(merge_hist);
    aggregate.keywords = TreeReduce(
        std::move(runs), merge_runs,
        [this](std::size_t n, const std::function<void(std::size_t)>& body) {
          pool_.ParallelFor(n, body);
        });
  }
  return aggregate;
}

}  // namespace scprt::engine
