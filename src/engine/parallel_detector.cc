#include "engine/parallel_detector.h"

#include <algorithm>
#include <thread>
#include <unordered_map>
#include <utility>

namespace scprt::engine {
namespace {

std::size_t ResolveThreads(std::size_t threads) {
  if (threads > 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace

ParallelDetector::ParallelDetector(const ParallelDetectorConfig& config,
                                   const text::KeywordDictionary* dictionary)
    : pool_(ResolveThreads(config.threads)),
      detector_(config.detector, dictionary),
      quantizer_(config.detector.quantum_size) {
  if (pool_.threads() > 1) {
    detector_.set_parallel_for(
        [this](std::size_t n, const std::function<void(std::size_t)>& body) {
          pool_.ParallelFor(n, body);
        });
  }
}

std::optional<detect::QuantumReport> ParallelDetector::Push(
    const stream::Message& message) {
  auto quantum = quantizer_.Push(message);
  if (!quantum) return std::nullopt;
  return ProcessQuantum(*quantum);
}

detect::QuantumReport ParallelDetector::ProcessQuantum(
    const stream::Quantum& quantum) {
  if (quantizer_.next_index() <= quantum.index) {
    quantizer_.SetNextIndex(quantum.index + 1);
  }
  return detector_.ProcessQuantumWithAggregate(quantum,
                                               ShardAggregate(quantum));
}

std::vector<detect::QuantumReport> ParallelDetector::Run(
    const std::vector<stream::Message>& trace) {
  std::vector<detect::QuantumReport> reports;
  for (const stream::Message& m : trace) {
    if (auto report = Push(m)) reports.push_back(*std::move(report));
  }
  return reports;
}

akg::QuantumAggregate ParallelDetector::ShardAggregate(
    const stream::Quantum& quantum) {
  const std::size_t shards = pool_.threads();
  if (shards <= 1) return akg::AggregateQuantum(quantum);

  // Phase A — slice-parallel routing: worker w scans only its slice of
  // the quantum and buckets (keyword, user) pairs by owning shard, so the
  // total scan work stays O(messages) regardless of the shard count.
  using Routed = std::vector<std::vector<std::pair<KeywordId, UserId>>>;
  std::vector<Routed> routed(shards, Routed(shards));
  const std::size_t messages = quantum.messages.size();
  pool_.RunShards(shards, [&](std::size_t w) {
    Routed& buckets = routed[w];
    const std::size_t begin = w * messages / shards;
    const std::size_t end = (w + 1) * messages / shards;
    for (std::size_t i = begin; i < end; ++i) {
      const stream::Message& m = quantum.messages[i];
      for (KeywordId k : m.keywords) {
        buckets[k % shards].emplace_back(k, m.user);
      }
    }
  });

  // Phase B — shard-parallel reduce: shard s gathers every worker's bucket
  // for s and canonicalizes through the same helper AggregateQuantum uses,
  // so the merged result equals the serial aggregate exactly.
  std::vector<akg::QuantumAggregate> parts(shards);
  pool_.RunShards(shards, [&](std::size_t s) {
    std::unordered_map<KeywordId, std::vector<UserId>> users_of;
    for (std::size_t w = 0; w < shards; ++w) {
      for (const auto& [keyword, user] : routed[w][s]) {
        users_of[keyword].push_back(user);
      }
    }
    parts[s] = akg::CanonicalAggregate(std::move(users_of), quantum.index);
  });

  akg::QuantumAggregate aggregate;
  aggregate.index = quantum.index;
  std::size_t total = 0;
  for (const akg::QuantumAggregate& part : parts) {
    total += part.keywords.size();
  }
  aggregate.keywords.reserve(total);
  for (akg::QuantumAggregate& part : parts) {
    for (auto& entry : part.keywords) {
      aggregate.keywords.push_back(std::move(entry));
    }
  }
  // Shards interleave keyword ids (k % shards), so a full sort restores the
  // canonical order AggregateQuantum produces.
  std::sort(aggregate.keywords.begin(), aggregate.keywords.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return aggregate;
}

}  // namespace scprt::engine
