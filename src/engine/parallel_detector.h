// Sharded multi-threaded front end over the single-threaded EventDetector.
//
// Work is partitioned by keyword: shard s of S owns every keyword k with
// k % S == s. Each quantum flows through four stages:
//
//   1. aggregate   (parallel)  — workers scan disjoint message slices and
//                                route (keyword, user) pairs to their
//                                owning shards (fed through the pool's
//                                per-shard SPSC queues), then each shard
//                                reduces its keywords to (keyword,
//                                distinct users);
//   2. merge       (serial)    — shard outputs concatenate and sort into
//                                the canonical QuantumAggregate;
//   3. graph + SCP (serial core, parallel hot loops) — the AKG builder
//                                batches Min-Hash signature refreshes and
//                                edge-correlation computations through the
//                                pool, then the single-writer ScpMaintainer
//                                applies the structural delta;
//   4. snapshot    (parallel)  — per-cluster report cores compute on the
//                                pool and merge in canonical (cluster id,
//                                then rank) order.
//
// Every parallel stage writes only per-index slots and every serial stage
// consumes canonical orderings, so the emitted QuantumReport sequence is
// bit-identical to EventDetector's on the same stream at any thread count
// (tests/parallel_detector_test.cc proves it at 1, 2 and 8 threads).

#ifndef SCPRT_ENGINE_PARALLEL_DETECTOR_H_
#define SCPRT_ENGINE_PARALLEL_DETECTOR_H_

#include <cstddef>
#include <optional>
#include <vector>

#include "detect/config.h"
#include "detect/detector.h"
#include "engine/shard_pool.h"
#include "stream/message.h"
#include "stream/quantizer.h"
#include "text/keyword_dictionary.h"

namespace scprt::engine {

/// Engine tuning on top of the detector configuration.
struct ParallelDetectorConfig {
  detect::DetectorConfig detector;
  /// Worker threads (= keyword shards). 0 derives the hardware concurrency;
  /// 1 runs everything inline on the calling thread.
  std::size_t threads = 0;
};

/// Drop-in parallel EventDetector: same Push/ProcessQuantum/Run surface,
/// same reports, sharded execution. Not thread-safe itself — one driver
/// thread feeds it, the pool parallelizes underneath.
class ParallelDetector {
 public:
  ParallelDetector(const ParallelDetectorConfig& config,
                   const text::KeywordDictionary* dictionary);

  /// Streams one message; returns a report when it completed a quantum.
  std::optional<detect::QuantumReport> Push(const stream::Message& message);

  /// Processes one pre-built quantum (clock re-bases past it).
  detect::QuantumReport ProcessQuantum(const stream::Quantum& quantum);

  /// Runs a whole trace; returns every quantum report.
  std::vector<detect::QuantumReport> Run(
      const std::vector<stream::Message>& trace);

  /// Degree of parallelism actually in use.
  std::size_t threads() const { return pool_.threads(); }

  /// The wrapped single-writer core (state inspection, checkpointing).
  const detect::EventDetector& core() const { return detector_; }

 private:
  /// Stage 1 + 2: the canonical aggregate, built on keyword shards.
  akg::QuantumAggregate ShardAggregate(const stream::Quantum& quantum);

  ShardPool pool_;  // outlives detector_'s parallel hook
  detect::EventDetector detector_;
  stream::Quantizer quantizer_;
};

}  // namespace scprt::engine

#endif  // SCPRT_ENGINE_PARALLEL_DETECTOR_H_
