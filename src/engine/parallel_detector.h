// Sharded multi-threaded front end over the single-threaded EventDetector.
//
// Work is partitioned by keyword: shard s of S owns every keyword k with
// k % S == s. Each quantum flows through four stages:
//
//   1. aggregate   (parallel)  — workers scan disjoint message slices and
//                                route (keyword, user) pairs to their
//                                owning shards (fed through the pool's
//                                per-shard SPSC queues), then each shard
//                                reduces its keywords to (keyword,
//                                distinct users);
//   2. merge       (parallel)  — shard outputs tree-reduce (pairwise
//                                sorted merges, common/parallel.h) into
//                                the canonical QuantumAggregate;
//   3. graph + SCP (serial core, parallel hot loops) — the AKG builder
//                                batches Min-Hash signature refreshes and
//                                edge-correlation computations through the
//                                pool, then the single-writer ScpMaintainer
//                                applies the structural delta;
//   4. snapshot    (parallel)  — per-cluster report cores compute on the
//                                pool and merge in canonical (cluster id,
//                                then rank) order.
//
// Every parallel stage writes only per-index slots and every serial stage
// consumes canonical orderings, so the emitted QuantumReport sequence is
// bit-identical to EventDetector's on the same stream at any thread count
// (tests/parallel_detector_test.cc proves it at 1, 2 and 8 threads).

#ifndef SCPRT_ENGINE_PARALLEL_DETECTOR_H_
#define SCPRT_ENGINE_PARALLEL_DETECTOR_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <vector>

#include "detect/checkpoint.h"
#include "detect/config.h"
#include "detect/detector.h"
#include "detect/snapshot_io.h"
#include "engine/shard_pool.h"
#include "stream/message.h"
#include "stream/quantizer.h"
#include "text/keyword_dictionary.h"

namespace scprt::engine {

/// Engine tuning on top of the detector configuration.
struct ParallelDetectorConfig {
  detect::DetectorConfig detector;
  /// Worker threads (= keyword shards). 0 derives the hardware concurrency;
  /// 1 runs everything inline on the calling thread.
  std::size_t threads = 0;
};

/// Drop-in parallel EventDetector: same Push/ProcessQuantum/Run surface,
/// same reports, sharded execution. Not thread-safe itself — one driver
/// thread feeds it, the pool parallelizes underneath.
class ParallelDetector {
 public:
  ParallelDetector(const ParallelDetectorConfig& config,
                   const text::KeywordDictionary* dictionary);

  /// Streams one message; returns a report when it completed a quantum.
  std::optional<detect::QuantumReport> Push(const stream::Message& message);

  /// Processes one pre-built quantum (clock re-bases past it).
  detect::QuantumReport ProcessQuantum(const stream::Quantum& quantum);

  /// Runs a whole trace; returns every quantum report.
  std::vector<detect::QuantumReport> Run(
      const std::vector<stream::Message>& trace);

  /// Degree of parallelism actually in use.
  std::size_t threads() const { return pool_.threads(); }

  /// The wrapped single-writer core (state inspection).
  const detect::EventDetector& core() const { return detector_; }

  /// Forwards to the core detector's report-time cluster sink (fires on
  /// the engine's driver thread, inside ProcessQuantum). nullptr detaches.
  void set_cluster_sink(detect::ClusterSink* sink) {
    detector_.set_cluster_sink(sink);
  }

  /// Writes a full native snapshot after quiescing the shard pool (the
  /// checkpoint fence: every in-flight shard task completes before a state
  /// byte is read). The format is detect/checkpoint.h's: a snapshot saved
  /// here loads through detect::LoadCheckpoint (and vice versa) — thread
  /// count is an engine property, not a snapshot property. `extras`
  /// attaches a quantizer override / IngestState exactly as the serial
  /// saver does (the ingest path passes its assembler's quantizer — the
  /// outermost accumulator). Returns false on stream failure.
  bool SaveCheckpoint(std::ostream& out,
                      std::uint64_t* checkpoint_id = nullptr,
                      const detect::CheckpointExtras& extras = {});

  /// Restores an engine from a full snapshot, running on `threads` workers
  /// (0 derives hardware concurrency). Returns nullptr on malformed input,
  /// with the typed reason in `error` (optional out); `ingest` /
  /// `ingest_present` surface the IngestState section when present.
  static std::unique_ptr<ParallelDetector> LoadCheckpoint(
      std::istream& in, const text::KeywordDictionary* dictionary,
      std::size_t threads, std::uint64_t* checkpoint_id = nullptr,
      detect::snapshot_io::LoadError* error = nullptr,
      detect::snapshot_io::IngestState* ingest = nullptr,
      bool* ingest_present = nullptr);

  /// Writes a delta checkpoint against the full snapshot identified by
  /// `base_id`: the given quanta processed since it, plus this engine's
  /// current pending partial quantum and clock (which live in the outer
  /// quantizer — detect::SaveDeltaCheckpoint on core() would silently save
  /// an empty pending list, so engine deltas must go through here; an
  /// extras.quantizer_override substitutes the ingest assembler's).
  bool SaveDeltaCheckpoint(std::uint64_t base_id,
                           const std::vector<stream::Quantum>& quanta,
                           std::ostream& out,
                           const detect::CheckpointExtras& extras = {});

  /// Applies a delta checkpoint (same format as the serial applier — both
  /// validate through snapshot_io::ReadAndValidateDelta) to this freshly
  /// restored engine; the bounded replay runs sharded. Returns false
  /// (engine unchanged) on malformed input or base mismatch, with the
  /// typed reason in `error` (optional out).
  bool ApplyDeltaCheckpoint(std::istream& in, std::uint64_t expected_base_id,
                            detect::snapshot_io::LoadError* error = nullptr,
                            detect::snapshot_io::IngestState* ingest = nullptr,
                            bool* ingest_present = nullptr);

  /// Replays an already-validated delta payload (the staged resume path:
  /// ingest/durable.h must install the delta's dictionary before the
  /// replay touches its keyword ids, so validation and application are
  /// separate steps there).
  void ApplyValidatedDelta(const detect::snapshot_io::DeltaPayload& delta);

  /// Clock of the outer quantizer (the engine's accumulation point).
  QuantumIndex next_quantum_index() const { return quantizer_.next_index(); }

  /// Moves the restored pending partial quantum out of the outer quantizer
  /// (ingest resume hands accumulation onward to the assembler).
  std::vector<stream::Message> TakePendingMessages() {
    return quantizer_.TakePending();
  }

 private:
  /// Stage 1 + 2: the canonical aggregate, built on keyword shards.
  akg::QuantumAggregate ShardAggregate(const stream::Quantum& quantum);

  ShardPool pool_;  // outlives detector_'s parallel hook
  detect::EventDetector detector_;
  stream::Quantizer quantizer_;
};

}  // namespace scprt::engine

#endif  // SCPRT_ENGINE_PARALLEL_DETECTOR_H_
