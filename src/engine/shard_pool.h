// Fixed pool of std::jthread shard workers fed by per-worker lock-free
// SPSC queues.
//
// The driver thread is the single producer: it pushes one task per shard
// into the workers' queues, then blocks on an atomic counter until every
// task has run. Worker w consumes shards w, w + threads, w + 2*threads, ...
// — a static assignment, so a given shard's work always lands on the same
// worker and per-shard state needs no synchronization. With threads == 1
// the pool spawns no workers and runs everything inline on the caller
// (exactly the serial detector's execution).

#ifndef SCPRT_ENGINE_SHARD_POOL_H_
#define SCPRT_ENGINE_SHARD_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "engine/spsc_queue.h"

namespace scprt::engine {

/// A pool of shard workers. All submission methods are driver-thread-only
/// and block until the submitted work completes; task bodies must not call
/// back into the pool.
class ShardPool {
 public:
  /// `threads` >= 1; 1 means inline execution, n > 1 spawns n workers.
  explicit ShardPool(std::size_t threads);
  ~ShardPool();

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  /// Degree of parallelism (1 when inline).
  std::size_t threads() const {
    return workers_.empty() ? 1 : workers_.size();
  }

  /// Runs body(shard) for every shard in [0, shards); bodies for distinct
  /// shards may run concurrently. Blocks until all have run.
  void RunShards(std::size_t shards,
                 const std::function<void(std::size_t)>& body);

  /// ParallelForFn-compatible loop over [0, n): static chunking, one chunk
  /// per worker. Deterministic slot writes make results order-independent.
  void ParallelFor(std::size_t n,
                   const std::function<void(std::size_t)>& body);

  /// Quiesce barrier: returns once every worker has drained its queue and
  /// gone idle, with all of their writes visible to the driver (the
  /// snapshot fence of ParallelDetector::SaveCheckpoint). All submission
  /// methods already block until completion, so this is a formal fence —
  /// but checkpointing goes through it rather than relying on that detail.
  void Quiesce();

 private:
  struct Task {
    const std::function<void(std::size_t)>* body = nullptr;
    std::size_t shard = 0;
  };

  struct Worker {
    SpscQueue<Task> queue{256};
    // Bumped after every push (and on stop) to wake the consumer.
    alignas(64) std::atomic<std::uint64_t> signal{0};
    std::jthread thread;  // last: joins before queue/signal destruction
  };

  void WorkerLoop(std::stop_token stop, Worker& worker);

  // Tasks outstanding in the current RunShards call.
  alignas(64) std::atomic<std::size_t> pending_{0};
  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace scprt::engine

#endif  // SCPRT_ENGINE_SHARD_POOL_H_
