#include "engine/shard_pool.h"

#include <algorithm>

#include "common/check.h"

namespace scprt::engine {

ShardPool::ShardPool(std::size_t threads) {
  SCPRT_CHECK(threads >= 1);
  if (threads == 1) return;  // inline mode
  workers_.reserve(threads);
  for (std::size_t w = 0; w < threads; ++w) {
    workers_.push_back(std::make_unique<Worker>());
  }
  // Start after the vector is fully built: WorkerLoop only touches its own
  // Worker and pending_, but a late reallocation would move peers.
  for (auto& worker : workers_) {
    Worker* raw = worker.get();
    raw->thread = std::jthread(
        [this, raw](std::stop_token stop) { WorkerLoop(stop, *raw); });
  }
}

ShardPool::~ShardPool() {
  for (auto& worker : workers_) {
    worker->thread.request_stop();
    worker->signal.fetch_add(1, std::memory_order_release);
    worker->signal.notify_one();
  }
  // std::jthread joins in its destructor.
}

void ShardPool::RunShards(std::size_t shards,
                          const std::function<void(std::size_t)>& body) {
  if (shards == 0) return;
  if (workers_.empty()) {
    for (std::size_t shard = 0; shard < shards; ++shard) body(shard);
    return;
  }

  pending_.store(shards, std::memory_order_relaxed);
  for (std::size_t shard = 0; shard < shards; ++shard) {
    Worker& worker = *workers_[shard % workers_.size()];
    while (!worker.queue.TryPush(Task{&body, shard})) {
      std::this_thread::yield();  // queue full — wait for the consumer
    }
    worker.signal.fetch_add(1, std::memory_order_release);
    worker.signal.notify_one();
  }
  for (;;) {
    const std::size_t left = pending_.load(std::memory_order_acquire);
    if (left == 0) break;
    pending_.wait(left, std::memory_order_acquire);
  }
}

void ShardPool::ParallelFor(std::size_t n,
                            const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t ways = std::min(n, threads());
  if (ways <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  const std::function<void(std::size_t)> chunk = [&](std::size_t c) {
    const std::size_t begin = c * n / ways;
    const std::size_t end = (c + 1) * n / ways;
    for (std::size_t i = begin; i < end; ++i) body(i);
  };
  RunShards(ways, chunk);
}

void ShardPool::Quiesce() {
  if (workers_.empty()) return;
  // One no-op task per worker: completion of all of them implies every
  // queue ran dry up to this fence, and the acquire on pending_ in
  // RunShards orders every prior worker write before our return.
  static const std::function<void(std::size_t)> noop = [](std::size_t) {};
  RunShards(workers_.size(), noop);
}

void ShardPool::WorkerLoop(std::stop_token stop, Worker& worker) {
  std::uint64_t seen = 0;
  while (true) {
    Task task;
    while (worker.queue.TryPop(task)) {
      (*task.body)(task.shard);
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        pending_.notify_one();
      }
    }
    if (stop.stop_requested()) return;
    const std::uint64_t signal =
        worker.signal.load(std::memory_order_acquire);
    if (signal != seen) {
      seen = signal;  // new pushes raced with the drain loop — re-check
      continue;
    }
    worker.signal.wait(signal, std::memory_order_acquire);
  }
}

}  // namespace scprt::engine
